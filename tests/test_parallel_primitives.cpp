// Tests for the parallel primitives: scan, reduce, pack, sort, merge.
//
// The batch-prep primitives (scan_exclusive / reduce / pack_indices in
// parallel/scan.hpp, parallel_merge in parallel/sort.hpp) are exercised here
// directly — outside any BOP — both for correctness (serial fast path AND
// the forced-parallel scheme via the cutoff guards) and for their measured
// task-count span, which is a schedule-invariant dag property the sort-merge
// s(n) story rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "parallel/prefix_sum.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace batcher {
namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed,
                                        std::int64_t range = 1000000) {
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(range))) -
        range / 2;
  }
  return v;
}

// Affine-map composition: associative but NOT commutative, so it catches
// scans that reorder the operator's arguments.
struct Affine {
  std::int64_t a = 1, b = 0;  // x -> a*x + b
  bool operator==(const Affine& o) const { return a == o.a && b == o.b; }
};
Affine compose(const Affine& f, const Affine& g) {
  // (g ∘ f): apply f first, then g — scan convention op(prefix, next).
  return Affine{f.a * g.a, f.b * g.a + g.b};
}

class ScanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanTest, BlockedMatchesSerial) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  auto data = random_values(n, 1);
  auto expected = data;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  sched.run([&] {
    par::prefix_sums(data.data(), static_cast<std::int64_t>(n));
  });
  EXPECT_EQ(data, expected);
}

TEST_P(ScanTest, RecursiveMatchesSerial) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  auto data = random_values(n, 2);
  auto expected = data;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  sched.run([&] {
    par::scan_inclusive_recursive(
        data.data(), static_cast<std::int64_t>(n),
        [](std::int64_t a, std::int64_t b) { return a + b; });
  });
  EXPECT_EQ(data, expected);
}

TEST_P(ScanTest, NonCommutativeOperator) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  rt::Scheduler sched(4);
  Xoshiro256 rng(3);
  std::vector<Affine> data(n);
  for (auto& f : data) {
    f.a = (rng.next() & 1) ? 1 : -1;  // keep magnitudes bounded
    f.b = static_cast<std::int64_t>(rng.next_below(100));
  }
  std::vector<Affine> expected(data);
  for (std::size_t i = 1; i < n; ++i) {
    expected[i] = compose(expected[i - 1], expected[i]);
  }
  sched.run([&] {
    par::scan_inclusive(data.data(), static_cast<std::int64_t>(n), compose);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], expected[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 64u, 100u,
                                           1000u, 4097u, 50000u));

TEST(Scan, WorksOutsideScheduler) {
  std::vector<std::int64_t> v{1, 2, 3, 4};
  par::prefix_sums(v.data(), 4);
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, 3, 6, 10}));
}

TEST(Reduce, SumMatchesSerial) {
  rt::Scheduler sched(4);
  auto data = random_values(10000, 4);
  const std::int64_t expected =
      std::accumulate(data.begin(), data.end(), std::int64_t{0});
  std::int64_t got = 0;
  sched.run([&] {
    got = par::parallel_sum<std::int64_t>(
        0, static_cast<std::int64_t>(data.size()),
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; });
  });
  EXPECT_EQ(got, expected);
}

TEST(Reduce, MaxWithIdentity) {
  rt::Scheduler sched(2);
  auto data = random_values(5000, 5);
  const std::int64_t expected = *std::max_element(data.begin(), data.end());
  std::int64_t got = 0;
  sched.run([&] {
    got = par::parallel_reduce<std::int64_t>(
        0, static_cast<std::int64_t>(data.size()),
        std::numeric_limits<std::int64_t>::min(),
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; },
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  });
  EXPECT_EQ(got, expected);
}

TEST(Reduce, EmptyRangeYieldsIdentity) {
  EXPECT_EQ(par::parallel_sum<std::int64_t>(5, 5,
                                            [](std::int64_t) { return 1; }),
            0);
}

class SortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortTest, MatchesStdSortOnRandomInput) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  auto data = random_values(n, 6, 100);  // narrow range -> many duplicates
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  sched.run([&] { par::parallel_sort(data); });
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 100u, 511u, 512u,
                                           513u, 5000u, 100000u));

TEST(Sort, AlreadySortedAndReversed) {
  rt::Scheduler sched(2);
  std::vector<std::int64_t> asc(10000), desc(10000);
  std::iota(asc.begin(), asc.end(), 0);
  for (std::size_t i = 0; i < desc.size(); ++i) {
    desc[i] = static_cast<std::int64_t>(desc.size() - i);
  }
  auto asc_copy = asc;
  sched.run([&] {
    par::parallel_sort(asc);
    par::parallel_sort(desc);
  });
  EXPECT_EQ(asc, asc_copy);
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
}

TEST(Sort, StableForEqualKeys) {
  rt::Scheduler sched(4);
  struct Item {
    int key;
    int seq;
  };
  Xoshiro256 rng(7);
  std::vector<Item> data(20000);
  for (int i = 0; i < static_cast<int>(data.size()); ++i) {
    data[static_cast<std::size_t>(i)] = {static_cast<int>(rng.next_below(16)), i};
  }
  sched.run([&] {
    par::parallel_sort(data.data(), static_cast<std::int64_t>(data.size()),
                       [](const Item& a, const Item& b) { return a.key < b.key; });
  });
  for (std::size_t i = 1; i < data.size(); ++i) {
    ASSERT_LE(data[i - 1].key, data[i].key);
    if (data[i - 1].key == data[i].key) {
      ASSERT_LT(data[i - 1].seq, data[i].seq) << "instability at " << i;
    }
  }
}

TEST(Sort, CustomComparatorDescending) {
  rt::Scheduler sched(2);
  auto data = random_values(3000, 8);
  sched.run([&] {
    par::parallel_sort(data.data(), static_cast<std::int64_t>(data.size()),
                       [](std::int64_t a, std::int64_t b) { return a > b; });
  });
  EXPECT_TRUE(std::is_sorted(data.rbegin(), data.rend()));
}

// --- batch-prep primitives (parallel/scan.hpp), serial and forced-parallel --

TEST(CutoffGuards, SetAndRestoreTheSharedTunables) {
  const std::int64_t scan0 = par::scan_serial_cutoff();
  const std::int64_t sort0 = par::sort_serial_cutoff();
  const std::int64_t merge0 = par::merge_serial_cutoff();
  {
    par::ScanCutoffGuard scan_guard(1);
    par::SortCutoffGuard sort_guard(2, 3);
    EXPECT_EQ(par::scan_serial_cutoff(), 1);
    EXPECT_EQ(par::sort_serial_cutoff(), 2);
    EXPECT_EQ(par::merge_serial_cutoff(), 3);
  }
  EXPECT_EQ(par::scan_serial_cutoff(), scan0);
  EXPECT_EQ(par::sort_serial_cutoff(), sort0);
  EXPECT_EQ(par::merge_serial_cutoff(), merge0);
}

class ScanExclusiveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanExclusiveTest, MatchesSerialModelOnBothSchemes) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  const auto input = random_values(n, 11);
  std::vector<std::int64_t> expected(n);
  std::int64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = running;
    running += input[i];
  }
  for (const std::int64_t cutoff : {std::int64_t{512}, std::int64_t{1}}) {
    par::ScanCutoffGuard guard(cutoff);
    auto data = input;
    std::int64_t total = 0;
    sched.run([&] {
      total = par::exclusive_prefix_sums(data.data(),
                                         static_cast<std::int64_t>(n));
    });
    EXPECT_EQ(data, expected) << "cutoff " << cutoff;
    EXPECT_EQ(total, running) << "cutoff " << cutoff;
  }
}

TEST_P(ScanExclusiveTest, NonCommutativeOperator) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  Xoshiro256 rng(12);
  std::vector<Affine> input(n);
  for (auto& f : input) {
    f.a = (rng.next() & 1) ? 1 : -1;
    f.b = static_cast<std::int64_t>(rng.next_below(100));
  }
  std::vector<Affine> expected(n);
  Affine running{1, 0};
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = running;
    running = compose(running, input[i]);
  }
  par::ScanCutoffGuard guard(1);  // force the blocked parallel scheme
  auto data = input;
  Affine total{1, 0};
  sched.run([&] {
    total = par::scan_exclusive(data.data(), static_cast<std::int64_t>(n),
                                compose, Affine{1, 0});
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], expected[i]) << "position " << i;
  }
  EXPECT_EQ(total, running);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanExclusiveTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 64u, 511u,
                                           512u, 513u, 4097u, 20000u));

TEST(PackIndices, MatchesSerialFilterOnBothSchemes) {
  rt::Scheduler sched(4);
  const std::size_t n = 5000;
  const auto vals = random_values(n, 13, 100);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (vals[i] > 0) expected.push_back(static_cast<std::uint32_t>(i));
  }
  for (const std::int64_t cutoff : {std::int64_t{1 << 20}, std::int64_t{1}}) {
    par::ScanCutoffGuard guard(cutoff);
    std::vector<std::uint32_t> out;
    std::int64_t count = 0;
    sched.run([&] {
      count = par::pack_indices(
          static_cast<std::int64_t>(n),
          [&](std::int64_t i) { return vals[static_cast<std::size_t>(i)] > 0; },
          out);
    });
    EXPECT_EQ(count, static_cast<std::int64_t>(expected.size()))
        << "cutoff " << cutoff;
    EXPECT_EQ(out, expected) << "cutoff " << cutoff;
  }
}

TEST(PackIndices, EmptyAllAndNone) {
  par::ScanCutoffGuard guard(1);
  rt::Scheduler sched(2);
  std::vector<std::uint32_t> out{99};  // stale contents must be discarded
  sched.run([&] {
    EXPECT_EQ(par::pack_indices(0, [](std::int64_t) { return true; }, out), 0);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(par::pack_indices(100, [](std::int64_t) { return false; }, out),
              0);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(par::pack_indices(100, [](std::int64_t) { return true; }, out),
              100);
  });
  ASSERT_EQ(out.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
}

TEST(ScanReduce, MatchesSerialOnBothSchemes) {
  rt::Scheduler sched(4);
  const auto vals = random_values(3000, 14);
  const std::int64_t expected_sum =
      std::accumulate(vals.begin(), vals.end(), std::int64_t{0});
  const std::int64_t expected_max =
      *std::max_element(vals.begin(), vals.end());
  for (const std::int64_t cutoff : {std::int64_t{1 << 20}, std::int64_t{1}}) {
    par::ScanCutoffGuard guard(cutoff);
    std::int64_t sum = 0, mx = 0;
    sched.run([&] {
      sum = par::reduce<std::int64_t>(
          static_cast<std::int64_t>(vals.size()),
          [&](std::int64_t i) { return vals[static_cast<std::size_t>(i)]; },
          [](std::int64_t a, std::int64_t b) { return a + b; },
          std::int64_t{0});
      mx = par::reduce<std::int64_t>(
          static_cast<std::int64_t>(vals.size()),
          [&](std::int64_t i) { return vals[static_cast<std::size_t>(i)]; },
          [](std::int64_t a, std::int64_t b) { return a > b ? a : b; },
          std::numeric_limits<std::int64_t>::min());
    });
    EXPECT_EQ(sum, expected_sum) << "cutoff " << cutoff;
    EXPECT_EQ(mx, expected_max) << "cutoff " << cutoff;
  }
  EXPECT_EQ(par::reduce<std::int64_t>(
                0, [](std::int64_t) { return 1; },
                [](std::int64_t a, std::int64_t b) { return a + b; },
                std::int64_t{42}),
            42);
}

// --- parallel merge (parallel/sort.hpp), outside msort ----------------------

TEST(ParallelMerge, MatchesStdMergeAcrossSkews) {
  rt::Scheduler sched(4);
  par::SortCutoffGuard guard(4);  // force the split recursion
  Xoshiro256 rng(15);
  const std::size_t shapes[][2] = {{0, 0},   {0, 100}, {100, 0}, {1, 1000},
                                   {777, 778}, {2048, 16}};
  for (const auto& shape : shapes) {
    std::vector<std::int64_t> a(shape[0]), b(shape[1]);
    for (auto& x : a) x = static_cast<std::int64_t>(rng.next_below(500));
    for (auto& x : b) x = static_cast<std::int64_t>(rng.next_below(500));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::int64_t> expected(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    std::vector<std::int64_t> out(a.size() + b.size());
    sched.run([&] {
      par::parallel_merge(a.data(), static_cast<std::int64_t>(a.size()),
                          b.data(), static_cast<std::int64_t>(b.size()),
                          out.data(), std::less<std::int64_t>{});
    });
    EXPECT_EQ(out, expected) << "shape " << shape[0] << "+" << shape[1];
  }
}

TEST(ParallelMerge, StableLeftBeforeRightOnTies) {
  rt::Scheduler sched(4);
  par::SortCutoffGuard guard(2);
  struct Item {
    int key;
    int src;  // 0 = left run, 1 = right run
  };
  Xoshiro256 rng(16);
  std::vector<Item> a(4000), b(4000);
  for (auto& it : a) it = {static_cast<int>(rng.next_below(8)), 0};
  for (auto& it : b) it = {static_cast<int>(rng.next_below(8)), 1};
  auto by_key = [](const Item& x, const Item& y) { return x.key < y.key; };
  std::stable_sort(a.begin(), a.end(), by_key);
  std::stable_sort(b.begin(), b.end(), by_key);
  std::vector<Item> out(a.size() + b.size());
  sched.run([&] {
    par::parallel_merge(a.data(), static_cast<std::int64_t>(a.size()),
                        b.data(), static_cast<std::int64_t>(b.size()),
                        out.data(), by_key);
  });
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key) << "position " << i;
    if (out[i - 1].key == out[i].key) {
      // Within a tie group all left-run elements precede right-run ones.
      ASSERT_LE(out[i - 1].src, out[i].src) << "instability at " << i;
    }
  }
}

// --- measured span of the primitives ----------------------------------------
//
// span_tasks counts spawns along the critical path and is schedule-invariant
// (a dag property), so these are exact asserts, valid even on one core.
// Measuring requires an active TraceSession (the ledger is off-path
// otherwise).

std::uint64_t measure_span_tasks(const std::function<void()>& body) {
  trace::TraceSession::Options opt;
  opt.ring_capacity = std::size_t{1} << 14;
  trace::TraceSession session(opt);
  rt::StatsSnapshot stats;
  {
    rt::Scheduler sched(2);
    sched.export_final_stats(&stats);
    sched.run([&] { body(); });
  }
  session.stop();
  EXPECT_EQ(stats.runs_measured, 1u);
  return stats.span_tasks;
}

TEST(PrimitiveSpan, BlockedScanSpanIsFlatInN) {
  // The blocked schemes fork min(n, 4P) blocks: once n clears that, the
  // task-count span does not depend on n at all.
  par::ScanCutoffGuard guard(1);
  std::vector<std::int64_t> small(4096, 1), large(65536, 1);
  const std::uint64_t span_small = measure_span_tasks([&] {
    par::exclusive_prefix_sums(small.data(),
                               static_cast<std::int64_t>(small.size()));
  });
  const std::uint64_t span_large = measure_span_tasks([&] {
    par::exclusive_prefix_sums(large.data(),
                               static_cast<std::int64_t>(large.size()));
  });
  EXPECT_GT(span_small, 0u);
  EXPECT_EQ(span_large, span_small)
      << "blocked scan span must not grow with n (16x input)";
}

TEST(PrimitiveSpan, PackSpanIsFlatInN) {
  par::ScanCutoffGuard guard(1);
  std::vector<std::uint32_t> out;
  const std::uint64_t span_small = measure_span_tasks([&] {
    par::pack_indices(4096, [](std::int64_t i) { return (i & 1) == 0; }, out);
  });
  const std::uint64_t span_large = measure_span_tasks([&] {
    par::pack_indices(65536, [](std::int64_t i) { return (i & 1) == 0; }, out);
  });
  EXPECT_GT(span_small, 0u);
  EXPECT_EQ(span_large, span_small);
}

TEST(PrimitiveSpan, MergeSortSpanGrowsPolylogarithmically) {
  // msort is Θ(lg³ n) span: multiplying n by 16 must multiply the measured
  // task span by far less than 16 (a serial splice would scale linearly).
  par::SortCutoffGuard guard(8);
  auto small = random_values(1024, 17);
  auto large = random_values(16384, 18);
  const std::uint64_t span_small = measure_span_tasks([&] {
    par::parallel_sort(small);
  });
  const std::uint64_t span_large = measure_span_tasks([&] {
    par::parallel_sort(large);
  });
  ASSERT_GT(span_small, 0u);
  EXPECT_LT(span_large, 4 * span_small)
      << "16x input must cost <4x span (polylog), got " << span_small
      << " -> " << span_large;
  EXPECT_LT(span_large, large.size() / 16)
      << "span must be far below linear";
}

TEST(PrimitiveSpan, ParallelMergeSpanGrowsPolylogarithmically) {
  par::SortCutoffGuard guard(8);
  auto mk = [](std::size_t n, std::uint64_t seed) {
    auto v = random_values(n, seed);
    std::sort(v.begin(), v.end());
    return v;
  };
  const auto a_small = mk(512, 19), b_small = mk(512, 20);
  const auto a_large = mk(8192, 21), b_large = mk(8192, 22);
  std::vector<std::int64_t> out_small(1024), out_large(16384);
  const std::uint64_t span_small = measure_span_tasks([&] {
    par::parallel_merge(a_small.data(), 512, b_small.data(), 512,
                        out_small.data(), std::less<std::int64_t>{});
  });
  const std::uint64_t span_large = measure_span_tasks([&] {
    par::parallel_merge(a_large.data(), 8192, b_large.data(), 8192,
                        out_large.data(), std::less<std::int64_t>{});
  });
  ASSERT_GT(span_small, 0u);
  EXPECT_LT(span_large, 4 * span_small)
      << "16x input must cost <4x merge span, got " << span_small << " -> "
      << span_large;
}

}  // namespace
}  // namespace batcher
