// Tests for the BATCHER scheduler extension itself, using an instrumented
// probe structure that checks the paper's invariants from inside BOP.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "batcher/batcher.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"

namespace batcher {
namespace {

// A batched structure that records everything and asserts the invariants.
class ProbeStructure final : public BatchedStructure {
 public:
  struct Op : OpRecordBase {
    std::int64_t id = 0;
    std::int64_t result = 0;
  };

  explicit ProbeStructure(unsigned P) : max_allowed_(P) {}

  void run_batch(OpRecordBase* const* ops, std::size_t count) override {
    // Invariant 1: at most one batch at a time.
    const int active = active_.fetch_add(1);
    EXPECT_EQ(active, 0) << "overlapping batches observed";
    // Invariant 2: batches contain at most P operations.
    EXPECT_LE(count, max_allowed_);

    for (std::size_t i = 0; i < count; ++i) {
      Op* op = static_cast<Op*>(ops[i]);
      op->result = op->id * 2 + 1;
    }
    ops_seen_.fetch_add(static_cast<std::int64_t>(count));
    batches_.fetch_add(1);
    if (static_cast<std::int64_t>(count) > max_batch_.load()) {
      max_batch_.store(static_cast<std::int64_t>(count));
    }
    active_.fetch_sub(1);
  }

  std::atomic<int> active_{0};
  std::atomic<std::int64_t> ops_seen_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> max_batch_{0};
  std::size_t max_allowed_;
};

class BatcherTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Batcher::SetupPolicy>> {
};

TEST_P(BatcherTest, EveryOperationProcessedExactlyOnce) {
  const unsigned P = std::get<0>(GetParam());
  rt::Scheduler sched(P);
  ProbeStructure probe(P);
  Batcher batcher(sched, probe, std::get<1>(GetParam()));

  constexpr std::int64_t kN = 2000;
  std::vector<std::int64_t> results(kN, -1);
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      ProbeStructure::Op op;
      op.id = i;
      batcher.batchify(op);
      results[static_cast<std::size_t>(i)] = op.result;
    });
  });

  EXPECT_EQ(probe.ops_seen_.load(), kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 2 + 1) << "op " << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.ops_processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats.batches_launched,
            static_cast<std::uint64_t>(probe.batches_.load()) +
                stats.empty_batches);
  EXPECT_LE(stats.max_batch_size, P);
}

TEST_P(BatcherTest, SequentialCallerMakesSingletonBatches) {
  const unsigned P = std::get<0>(GetParam());
  rt::Scheduler sched(P);
  ProbeStructure probe(P);
  Batcher batcher(sched, probe, std::get<1>(GetParam()));

  sched.run([&] {
    for (std::int64_t i = 0; i < 50; ++i) {
      ProbeStructure::Op op;
      op.id = i;
      batcher.batchify(op);
      EXPECT_EQ(op.result, i * 2 + 1);
    }
  });
  // A strictly sequential caller can never have two ops pending at once.
  EXPECT_EQ(batcher.stats().max_batch_size, 1u);
  EXPECT_EQ(probe.ops_seen_.load(), 50);
}

TEST_P(BatcherTest, HistogramAccountsForAllBatches) {
  const unsigned P = std::get<0>(GetParam());
  rt::Scheduler sched(P);
  ProbeStructure probe(P);
  Batcher batcher(sched, probe, std::get<1>(GetParam()));

  sched.run([&] {
    rt::parallel_for(0, 500, [&](std::int64_t i) {
      ProbeStructure::Op op;
      op.id = i;
      batcher.batchify(op);
    });
  });
  const BatcherStats stats = batcher.stats();
  std::uint64_t total_batches = 0;
  std::uint64_t total_ops = 0;
  for (std::size_t k = 0; k < stats.batch_size_histogram.size(); ++k) {
    total_batches += stats.batch_size_histogram[k];
    total_ops += stats.batch_size_histogram[k] * k;
  }
  EXPECT_EQ(total_batches, stats.batches_launched);
  EXPECT_EQ(total_ops, stats.ops_processed);
  EXPECT_EQ(total_ops, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BatcherTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(Batcher::SetupPolicy::Sequential,
                                         Batcher::SetupPolicy::Parallel,
                                         Batcher::SetupPolicy::Announce)));

TEST(Batcher, TwoIndependentDomains) {
  // Two data structures batch independently; ops interleave freely.
  rt::Scheduler sched(4);
  ProbeStructure probe_a(4), probe_b(4);
  Batcher batcher_a(sched, probe_a);
  Batcher batcher_b(sched, probe_b);

  constexpr std::int64_t kN = 400;
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      ProbeStructure::Op op;
      op.id = i;
      if (i % 2 == 0) {
        batcher_a.batchify(op);
      } else {
        batcher_b.batchify(op);
      }
      EXPECT_EQ(op.result, i * 2 + 1);
    });
  });
  EXPECT_EQ(probe_a.ops_seen_.load() + probe_b.ops_seen_.load(), kN);
}

TEST(Batcher, OpsFromNestedParallelism) {
  rt::Scheduler sched(4);
  ProbeStructure probe(4);
  Batcher batcher(sched, probe);
  std::atomic<std::int64_t> sum{0};
  sched.run([&] {
    rt::parallel_for(0, 64, [&](std::int64_t i) {
      rt::parallel_invoke(
          [&] {
            ProbeStructure::Op op;
            op.id = i;
            batcher.batchify(op);
            sum.fetch_add(op.result);
          },
          [&] {
            ProbeStructure::Op op;
            op.id = i + 1000;
            batcher.batchify(op);
            sum.fetch_add(op.result);
          });
    });
  });
  EXPECT_EQ(probe.ops_seen_.load(), 128);
  // sum of (2i+1) for i in [0,64) plus (2(i+1000)+1).
  std::int64_t expected = 0;
  for (std::int64_t i = 0; i < 64; ++i) expected += (2 * i + 1) + (2 * (i + 1000) + 1);
  EXPECT_EQ(sum.load(), expected);
}

TEST(Batcher, StatsStayConsistentUnderBatchifyStorms) {
  // Regression guard: histogram, max and mean must stay mutually consistent
  // while P workers hammer batchify across many rounds.  Checked after every
  // round (stats are exact whenever no batch is in flight).
  constexpr unsigned P = 8;
  rt::Scheduler sched(P);
  ProbeStructure probe(P);
  Batcher batcher(sched, probe);

  constexpr int kRounds = 25;
  constexpr std::int64_t kOpsPerRound = 400;
  for (int round = 0; round < kRounds; ++round) {
    sched.run([&] {
      rt::parallel_for(0, kOpsPerRound, [&](std::int64_t i) {
        ProbeStructure::Op op;
        op.id = i;
        batcher.batchify(op);
      },
                       /*grain=*/1);
    });

    const BatcherStats stats = batcher.stats();
    ASSERT_EQ(stats.ops_processed,
              static_cast<std::uint64_t>(kOpsPerRound) * (round + 1))
        << "round " << round;
    ASSERT_EQ(stats.batch_size_histogram.size(), static_cast<std::size_t>(P) + 1);

    std::uint64_t hist_batches = 0, hist_ops = 0, hist_max = 0;
    for (std::size_t k = 0; k < stats.batch_size_histogram.size(); ++k) {
      const std::uint64_t n = stats.batch_size_histogram[k];
      hist_batches += n;
      hist_ops += n * k;
      if (n > 0 && k > hist_max) hist_max = k;
    }
    // Every launched batch is in exactly one histogram bucket...
    ASSERT_EQ(hist_batches, stats.batches_launched) << "round " << round;
    // ...bucket 0 is exactly the empty launches...
    ASSERT_EQ(stats.batch_size_histogram[0], stats.empty_batches)
        << "round " << round;
    // ...the weighted sum is the op count...
    ASSERT_EQ(hist_ops, stats.ops_processed) << "round " << round;
    // ...the max matches the highest populated bucket (Invariant 2 caps both)...
    ASSERT_EQ(hist_max, stats.max_batch_size) << "round " << round;
    ASSERT_LE(stats.max_batch_size, static_cast<std::uint64_t>(P));
    // ...ops split exactly into failed and succeeded (no faults here, so
    // nothing failed and every non-empty launch is clean)...
    ASSERT_EQ(stats.ops_processed, stats.ops_failed + stats.ops_succeeded)
        << "round " << round;
    ASSERT_EQ(stats.ops_failed, 0u);
    ASSERT_EQ(stats.clean_nonempty_batches,
              stats.batches_launched - stats.empty_batches)
        << "round " << round;
    // ...and the mean is succeeded ops over clean non-empty launches.
    if (stats.clean_nonempty_batches > 0) {
      ASSERT_DOUBLE_EQ(stats.mean_batch_size(),
                       static_cast<double>(stats.ops_succeeded) /
                           static_cast<double>(stats.clean_nonempty_batches));
      ASSERT_LE(stats.mean_batch_size(), static_cast<double>(P));
      ASSERT_GE(stats.mean_batch_size(), 1.0);
    }
  }
  EXPECT_EQ(probe.ops_seen_.load(), kOpsPerRound * kRounds);
}

// --- announce-list collect and batch chaining (§11) -------------------------

// A probe whose BOP yields repeatedly: other (timesliced) workers get CPU
// while the batch flag is held, announce their ops, and the launcher finds a
// non-empty announce list when the batch finishes — the chaining condition.
class YieldingProbe final : public BatchedStructure {
 public:
  struct Op : OpRecordBase {
    std::int64_t id = 0;
    std::int64_t result = 0;
  };

  void run_batch(OpRecordBase* const* ops, std::size_t count) override {
    for (int i = 0; i < 16; ++i) std::this_thread::yield();
    for (std::size_t i = 0; i < count; ++i) {
      Op* op = static_cast<Op*>(ops[i]);
      op->result = op->id + 1;
    }
    ops_seen_.fetch_add(static_cast<std::int64_t>(count));
  }

  std::atomic<std::int64_t> ops_seen_{0};
};

// Runs one storm round against `batcher`; every op's result is checked.
void announce_storm_round(rt::Scheduler& sched, Batcher& batcher,
                          std::int64_t ops) {
  sched.run([&] {
    rt::parallel_for(0, ops, [&](std::int64_t i) {
      YieldingProbe::Op op;
      op.id = i;
      batcher.batchify(op);
      ASSERT_EQ(op.result, i + 1);
    },
                     /*grain=*/1);
  });
}

TEST(AnnounceChaining, SlowBopProducesChainedLaunches) {
  constexpr unsigned P = 8;
  rt::Scheduler sched(P);
  YieldingProbe probe;
  Batcher batcher(sched, probe, Batcher::SetupPolicy::Announce);
  ASSERT_EQ(batcher.chain_limit(), static_cast<std::size_t>(P));

  // Chaining needs at least one worker to announce while the BOP runs; the
  // yielding BOP makes that overwhelmingly likely per round, but it is still
  // schedule-dependent, so run rounds until observed (bounded).
  std::int64_t total = 0;
  for (int round = 0; round < 40 && batcher.stats().chained_launches == 0;
       ++round) {
    announce_storm_round(sched, batcher, 200);
    total += 200;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_GT(stats.chained_launches, 0u)
      << "no chained launch in " << total << " announce-path ops";
  EXPECT_LE(stats.chained_launches, stats.batches_launched);
  EXPECT_EQ(stats.ops_processed, static_cast<std::uint64_t>(total));
  EXPECT_EQ(probe.ops_seen_.load(), total);
  EXPECT_GT(stats.announce_pushes, 0u);
  // Every processed op announced itself exactly once.
  EXPECT_EQ(stats.announce_pushes, stats.ops_processed);
}

TEST(AnnounceChaining, ChainLimitOneDisablesChaining) {
  constexpr unsigned P = 8;
  rt::Scheduler sched(P);
  YieldingProbe probe;
  Batcher batcher(sched, probe, Batcher::SetupPolicy::Announce);
  batcher.set_chain_limit(1);
  ASSERT_EQ(batcher.chain_limit(), 1u);

  for (int round = 0; round < 5; ++round) {
    announce_storm_round(sched, batcher, 200);
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.chained_launches, 0u);
  EXPECT_EQ(stats.ops_processed, 1000u);
}

// Counts launches per flag hold straight off the hook stream: a hold starts
// at kFlagCasWon with one launch and grows by one per kLaunchChained, so the
// per-hold launch count must never exceed the configured chain limit.
class ChainBoundObserver final : public rt::hooks::ScheduleObserver {
 public:
  explicit ChainBoundObserver(std::uint64_t limit) : limit_(limit) {}

  void on_event(const rt::hooks::HookEvent& event) override {
    using P = rt::hooks::HookPoint;
    // Flag ownership is serialized per domain, so these two points never
    // race each other; relaxed atomics only make the counters TSan-clean.
    if (event.point == P::kFlagCasWon) {
      launches_this_hold_.store(1, std::memory_order_relaxed);
    } else if (event.point == P::kLaunchChained) {
      const std::uint64_t n =
          launches_this_hold_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n > limit_) over_limit_.store(true, std::memory_order_relaxed);
      if (event.value < 1 || event.value != n - 1) {
        bad_index_.store(true, std::memory_order_relaxed);
      }
      chained_seen_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool over_limit() const { return over_limit_.load(); }
  bool bad_index() const { return bad_index_.load(); }
  std::uint64_t chained_seen() const { return chained_seen_.load(); }

 private:
  const std::uint64_t limit_;
  std::atomic<std::uint64_t> launches_this_hold_{0};
  std::atomic<std::uint64_t> chained_seen_{0};
  std::atomic<bool> over_limit_{false};
  std::atomic<bool> bad_index_{false};
};

TEST(AnnounceChaining, LaunchesPerFlagHoldRespectChainLimit) {
  if (!rt::hooks::kEnabled) {
    GTEST_SKIP() << "built without BATCHER_AUDIT; no live hook stream";
  }
  constexpr unsigned P = 8;
  constexpr std::size_t kLimit = 3;
  ChainBoundObserver observer(kLimit);
  rt::hooks::install_observer(&observer);
  {
    rt::Scheduler sched(P);
    YieldingProbe probe;
    Batcher batcher(sched, probe, Batcher::SetupPolicy::Announce);
    batcher.set_chain_limit(kLimit);
    for (int round = 0; round < 10; ++round) {
      announce_storm_round(sched, batcher, 200);
    }
  }  // scheduler destroyed: no further emissions
  rt::hooks::install_observer(nullptr);
  EXPECT_FALSE(observer.over_limit())
      << "a flag hold ran more than " << kLimit << " launches";
  EXPECT_FALSE(observer.bad_index())
      << "kLaunchChained chain indices not consecutive from 1";
}

TEST(AnnounceChaining, SingleWorkerNeverStealsNorChains) {
  // P=1 regression for the try_steal early return: with nobody to steal
  // from, a run must record zero steal attempts — and chaining is impossible
  // (chain_limit clamps to 1 and no second worker can announce mid-launch).
  rt::StatsSnapshot snap;
  {
    rt::Scheduler sched(1);
    sched.export_final_stats(&snap);
    YieldingProbe probe;
    Batcher batcher(sched, probe, Batcher::SetupPolicy::Announce);
    ASSERT_EQ(batcher.chain_limit(), 1u);
    sched.run([&] {
      rt::parallel_for(0, 128, [&](std::int64_t i) {
        YieldingProbe::Op op;
        op.id = i;
        batcher.batchify(op);
        ASSERT_EQ(op.result, i + 1);
      },
                       /*grain=*/1);
    });
    const BatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.ops_processed, 128u);
    EXPECT_EQ(stats.chained_launches, 0u);
    EXPECT_EQ(stats.max_batch_size, 1u);
  }  // destruction publishes the final snapshot
  EXPECT_EQ(snap.core_steal_attempts, 0u);
  EXPECT_EQ(snap.batch_steal_attempts, 0u);
  EXPECT_EQ(snap.steals_succeeded, 0u);
}

TEST(Batcher, StatsResetClearsCounters) {
  rt::Scheduler sched(2);
  ProbeStructure probe(2);
  Batcher batcher(sched, probe);
  sched.run([&] {
    ProbeStructure::Op op;
    op.id = 1;
    batcher.batchify(op);
  });
  EXPECT_GT(batcher.stats().batches_launched, 0u);
  batcher.reset_stats();
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches_launched, 0u);
  EXPECT_EQ(stats.ops_processed, 0u);
  EXPECT_EQ(stats.max_batch_size, 0u);
}

}  // namespace
}  // namespace batcher
