// Tests for the flat-combining baseline (§1/§7).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/flat_combining.hpp"
#include "concurrent/seq_skiplist.hpp"

namespace batcher::conc {
namespace {

struct CounterOp {
  std::int64_t delta = 0;
  std::int64_t result = 0;
};

TEST(FlatCombiner, SingleThreadActsAsPlainCall) {
  std::int64_t value = 0;
  auto apply = [&](CounterOp* op) {
    value += op->delta;
    op->result = value;
  };
  FlatCombiner<CounterOp, decltype(apply)> fc(1, apply);
  CounterOp op;
  op.delta = 5;
  fc.apply(0, op);
  EXPECT_EQ(op.result, 5);
  EXPECT_EQ(fc.ops_combined(), 1u);
  EXPECT_GE(fc.combine_passes(), 1u);
}

TEST(FlatCombiner, ParallelIncrementsLinearize) {
  std::int64_t value = 0;  // deliberately unsynchronized: combiner lock guards it
  auto apply = [&](CounterOp* op) {
    value += op->delta;
    op->result = value;
  };
  constexpr int kThreads = 4;
  constexpr int kPer = 5000;
  FlatCombiner<CounterOp, decltype(apply)> fc(kThreads, apply);
  std::vector<std::vector<std::int64_t>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        CounterOp op;
        op.delta = 1;
        fc.apply(static_cast<std::size_t>(t), op);
        results[static_cast<std::size_t>(t)].push_back(op.result);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, kThreads * kPer);
  // Post-values must form a permutation of 1..n (linearizability).
  std::set<std::int64_t> all;
  for (const auto& r : results) {
    for (std::int64_t v : r) EXPECT_TRUE(all.insert(v).second) << "dup " << v;
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_EQ(*all.begin(), 1);
  EXPECT_EQ(*all.rbegin(), kThreads * kPer);
  EXPECT_EQ(fc.ops_combined(), static_cast<std::uint64_t>(kThreads * kPer));
}

TEST(FlatCombiner, CombinesMultipleOpsPerPass) {
  // With several threads posting, some combine passes should serve > 1 op.
  std::int64_t value = 0;
  auto apply = [&](CounterOp* op) {
    value += op->delta;
    op->result = value;
  };
  constexpr int kThreads = 4;
  FlatCombiner<CounterOp, decltype(apply)> fc(kThreads, apply);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        CounterOp op;
        op.delta = 1;
        fc.apply(static_cast<std::size_t>(t), op);
      }
    });
  }
  for (auto& t : threads) t.join();
  // ops per pass > 1 on average would require real parallelism; on a
  // single-core host we can only assert the accounting is consistent.
  EXPECT_EQ(fc.ops_combined(), 4u * 20000u);
  EXPECT_LE(fc.combine_passes(), fc.ops_combined());
  EXPECT_GE(fc.combine_passes(), 1u);
}

struct SetOp {
  enum { Insert, Contains } kind = Insert;
  std::int64_t key = 0;
  bool result = false;
};

TEST(FlatCombiner, GuardsASequentialSkipList) {
  SeqSkipList list;
  auto apply = [&](SetOp* op) {
    op->result =
        (op->kind == SetOp::Insert) ? list.insert(op->key) : list.contains(op->key);
  };
  constexpr int kThreads = 4;
  FlatCombiner<SetOp, decltype(apply)> fc(kThreads, apply);
  std::vector<std::thread> threads;
  std::atomic<int> inserted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::int64_t i = 0; i < 2000; ++i) {
        SetOp op;
        op.kind = SetOp::Insert;
        op.key = (t % 2 == 0) ? i : 10000 + i;  // two threads share each range
        fc.apply(static_cast<std::size_t>(t), op);
        if (op.result) inserted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(inserted.load(), 4000) << "each key inserted exactly once";
  EXPECT_EQ(list.size(), 4000u);
}

}  // namespace
}  // namespace batcher::conc
