// Chaos suite (DESIGN.md §13): the seeded FaultSchedule engine, the
// StallWatchdog escalation seam, and the acceptance sweeps for the
// deadline-aware, overload-shedding ExternalDomain.
//
// Registered under a "chaos/" prefix so `ctest -R chaos` runs exactly this
// suite (the CI chaos job runs it under ASan; the tsan job's regex includes
// it too).  Layers:
//
//   1. FaultSchedule unit behaviour — deterministic expansion of a seed into
//      a sorted action schedule, exactly-once firing at event counts, wedge
//      flags.  Driven by synthetic events, so these run in every build.
//   2. Escalation — a wedged domain detected through the stall_probe →
//      StallWatchdog::check_now() → escalation handler → quarantine path
//      unblocks every submitter through legal slot edges.
//   3. Acceptance sweeps (live hooks, BATCHER_AUDIT builds): 500+ seeds of
//      FaultSchedule chaos over the external ingress path, the three-way
//      revoke race, and the multi-domain perturbed sweep.  Every seed must
//      end with zero auditor violations, a quiet watchdog, and the
//      ops_served == ops_succeeded + ops_failed + ops_timed_out identity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_session.hpp"
#include "audit/fault_schedule.hpp"
#include "audit/stall_watchdog.hpp"
#include "batcher/external.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_pq.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "service/shard_router.hpp"

namespace batcher {
namespace {

namespace hooks = rt::hooks;
using audit::AuditSession;
using audit::FaultAction;
using audit::FaultKind;
using audit::FaultSchedule;
using audit::SchedulePerturber;
using audit::StallReport;
using audit::StallWatchdog;
using hooks::HookEvent;
using hooks::HookPoint;
using rt::TaskKind;

#define REQUIRE_LIVE_HOOKS()                                              \
  do {                                                                    \
    if (!hooks::kEnabled)                                                 \
      GTEST_SKIP() << "built without BATCHER_AUDIT; no live hook stream"; \
  } while (0)

HookEvent synthetic_event(unsigned w) {
  return {HookPoint::kPop, w, TaskKind::Batch, TaskKind::Core, nullptr, 0};
}

// --- 1. FaultSchedule unit behaviour ----------------------------------------

TEST(FaultScheduleTest, SeedExpandsDeterministicallyIntoSortedSchedule) {
  FaultSchedule a(123);
  FaultSchedule b(123);
  ASSERT_EQ(a.actions().size(), b.actions().size());
  ASSERT_GE(a.actions().size(), 1u);
  ASSERT_LE(a.actions().size(), 4u);  // default max_actions
  for (std::size_t i = 0; i < a.actions().size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.actions()[i].kind),
              static_cast<int>(b.actions()[i].kind));
    EXPECT_EQ(a.actions()[i].at_event, b.actions()[i].at_event);
    EXPECT_EQ(a.actions()[i].magnitude, b.actions()[i].magnitude);
    if (i > 0) {
      EXPECT_GE(a.actions()[i].at_event, a.actions()[i - 1].at_event);
    }
  }
  // reseed() reproduces the same schedule the constructor denoted.
  a.reseed(123);
  ASSERT_EQ(a.actions().size(), b.actions().size());
  EXPECT_EQ(a.actions().front().at_event, b.actions().front().at_event);

  // Different seeds denote different schedules (somewhere in a small range).
  bool any_differs = false;
  for (std::uint64_t seed = 124; seed < 132 && !any_differs; ++seed) {
    FaultSchedule c(seed);
    any_differs = c.actions().size() != b.actions().size() ||
                  c.actions().front().at_event != b.actions().front().at_event;
  }
  EXPECT_TRUE(any_differs);

  const std::string desc = a.describe();
  EXPECT_NE(desc.find("FaultSchedule(seed=123)"), std::string::npos) << desc;
  EXPECT_NE(desc.find(audit::fault_kind_name(a.actions().front().kind)),
            std::string::npos)
      << desc;
}

TEST(FaultScheduleTest, DelayActionsFireExactlyOnceAtTheirEventCounts) {
  FaultSchedule::Options o;
  o.enable_throw_in_bop = false;
  o.enable_bad_alloc = false;  // delay-only menu: firing is a harmless spin
  o.horizon_events = 64;
  o.max_delay_spins = 4;
  FaultSchedule fs(9, o);
  ASSERT_GE(fs.actions().size(), 1u);
  for (const FaultAction& a : fs.actions()) {
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(FaultKind::kDelay));
    ASSERT_GE(a.at_event, 1u);
    ASSERT_LE(a.at_event, 64u);
    ASSERT_GE(a.magnitude, 1u);
    ASSERT_LE(a.magnitude, 4u);
  }
  // Feed events one at a time: fired_count() rises exactly when the count
  // crosses an action's at_event, never before, never twice.
  std::size_t expected_fired = 0;
  for (std::uint64_t n = 1; n <= 64; ++n) {
    fs.on_event(synthetic_event(0));
    while (expected_fired < fs.actions().size() &&
           fs.actions()[expected_fired].at_event <= n) {
      ++expected_fired;
    }
    ASSERT_EQ(fs.fired_count(), expected_fired) << "event " << n;
  }
  EXPECT_EQ(fs.events_observed(), 64u);
  EXPECT_EQ(fs.fired_count(), fs.actions().size());
  EXPECT_NE(fs.describe().find("[fired]"), std::string::npos);
}

TEST(FaultScheduleTest, WedgeActionMarksExactlyTheDrawnTid) {
  FaultSchedule::Options o;
  o.enable_throw_in_bop = false;
  o.enable_delay = false;
  o.enable_bad_alloc = false;
  o.external_tids = 3;  // wedge-only menu
  o.horizon_events = 32;
  FaultSchedule fs(5, o);
  ASSERT_GE(fs.actions().size(), 1u);
  EXPECT_FALSE(fs.external_wedged(0));
  EXPECT_FALSE(fs.external_wedged(1));
  EXPECT_FALSE(fs.external_wedged(2));
  for (int i = 0; i < 32; ++i) fs.on_event(synthetic_event(0));
  EXPECT_EQ(fs.fired_count(), fs.actions().size());
  for (const FaultAction& a : fs.actions()) {
    ASSERT_LT(a.magnitude, 3u);
    EXPECT_TRUE(fs.external_wedged(a.magnitude));
  }
  EXPECT_FALSE(fs.external_wedged(99));  // out of range: never wedged
  fs.reseed(5);
  EXPECT_FALSE(fs.external_wedged(fs.actions().front().magnitude));
}

// --- 2. Watchdog escalation & quarantine ------------------------------------

TEST(Escalation, StallProbeEscalatesAndQuarantineUnblocksSubmitter) {
  // A wedged pump never claims.  The blocked submitter itself detects the
  // stall — its stall_probe calls StallWatchdog::check_now(), the wall
  // budget trips, and the escalation handler quarantines the domain, failing
  // the pending record through legal slot edges.  The submitter unblocks
  // with DomainQuarantined without any pump ever running.
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);

  StallWatchdog::Options wopt;
  wopt.wall_budget_ms = 1;
  StallWatchdog wd(2, wopt);

  ExternalDomain* domain_ptr = nullptr;
  std::atomic<int> escalations{0};
  wd.set_escalation_handler([&](const StallReport& report) {
    escalations.fetch_add(1, std::memory_order_relaxed);
    EXPECT_FALSE(report.what.empty());
    domain_ptr->quarantine();
  });

  ExternalDomain::Options dopt;
  dopt.stall_probe = [&] { wd.check_now(); };
  ExternalDomain domain(sched, counter, 1, dopt);
  domain_ptr = &domain;

  // Synthesize the wedged-launch evidence (a flag acquired and never
  // released); in audited runs the live hook stream provides this.
  wd.on_event({HookPoint::kFlagCasWon, 0, TaskKind::Core, TaskKind::Core,
               &domain});

  ds::BatchedCounter::Op op;
  op.delta = 1;
  EXPECT_THROW(domain.submit(0, op), DomainQuarantined);
  EXPECT_TRUE(domain.quarantined());
  EXPECT_TRUE(domain.closed());
  EXPECT_EQ(escalations.load(), 1);  // flagged once per episode
  EXPECT_TRUE(wd.stalled());
  EXPECT_EQ(domain.ops_failed(), 1u);
  EXPECT_EQ(domain.ops_served(), 1u);
  EXPECT_EQ(counter.value_unsafe(), 0);

  // Quarantined beats closed in the refusal path too.
  EXPECT_THROW(domain.submit(0, op), DomainQuarantined);
}

TEST(Escalation, QuarantineFailClaimedFailsRecordsOfAWedgedPump) {
  // The op is already claimed (Executing) when the pump wedges inside the
  // BOP: plain quarantine cannot touch it (that edge belongs to the pump),
  // but quarantine(fail_claimed=true) — the wedged-pump last resort — flips
  // it to Done-with-error and the submitter unblocks.
  rt::Scheduler sched(2);
  struct Wedge final : BatchedStructure {
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    void run_batch(OpRecordBase* const* /*ops*/, std::size_t /*n*/) override {
      entered.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  } wedge;
  ExternalDomain domain(sched, wedge, 1);

  // The record outlives every party (the wedged BOP still holds a pointer
  // to it after the submitter has been failed out).
  ds::BatchedCounter::Op op;
  op.delta = 1;
  std::atomic<bool> submitter_unblocked{false};
  std::thread submitter([&] {
    EXPECT_THROW(domain.submit(0, op), DomainQuarantined);
    submitter_unblocked.store(true, std::memory_order_release);
  });
  std::thread rescuer([&] {
    while (!wedge.entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    domain.quarantine(/*fail_claimed=*/true);
    while (!submitter_unblocked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    wedge.release.store(true, std::memory_order_release);  // un-wedge the pump
  });
  sched.run([&] { domain.serve(); });
  submitter.join();
  rescuer.join();
  EXPECT_TRUE(submitter_unblocked.load());
  EXPECT_EQ(domain.ops_failed(), 1u);
  EXPECT_EQ(domain.ops_served(), 1u);
}

// --- 3. Acceptance sweeps (live hooks) --------------------------------------

// Forwards each event to the audit stack first (model before shake), then to
// the fault engine, so injected faults land on an already-consistent model.
struct ChaosObserver final : hooks::ScheduleObserver {
  AuditSession* session;
  FaultSchedule* faults;
  void on_event(const HookEvent& event) override {
    session->on_event(event);
    faults->on_event(event);
  }
};

SchedulePerturber::Options sweep_perturbation() {
  SchedulePerturber::Options opts;
  opts.yield_one_in = 96;
  opts.pause_one_in = 8;
  opts.max_pause_spins = 32;
  return opts;
}

// The acceptance sweep: 500+ seeds, each denoting a replayable schedule of
// faults (throw-in-BOP, delays, bad_alloc, wedged clients) over the external
// ingress path.  Every seed must terminate (no hang), keep the protocol
// invariant-clean, keep the watchdog quiet, and resolve every published op
// exactly once.
TEST(ChaosSweep, FaultScheduleSweepNeverHangsNeverLeaksOps) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 520;
  constexpr std::size_t kClients = 3;
  constexpr int kOpsPerClient = 12;

  AuditSession session(kWorkers, 0, sweep_perturbation());
  FaultSchedule::Options fopt;
  fopt.horizon_events = 1500;  // within a small storm's event volume
  fopt.external_tids = kClients;
  FaultSchedule faults(0, fopt);
  ChaosObserver observer;
  observer.session = &session;
  observer.faults = &faults;
  hooks::install_observer(&observer);

  std::uint64_t total_fired = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    session.reseed(seed);
    faults.reseed(seed);
    hooks::test_faults().reset();

    std::uint64_t succeeded = 0;
    bool saw_bad_alloc = false;
    std::int64_t counter_value = 0;
    ExternalStats st;
    {
      rt::Scheduler sched(kWorkers);
      ds::BatchedCounter counter(sched);
      ExternalDomain::Options dopt;
      dopt.shed_threshold = kClients;
      ExternalDomain domain(sched, counter, kClients, dopt);

      std::atomic<std::uint64_t> ok{0};
      std::atomic<bool> bad_alloc_seen{false};
      std::atomic<std::size_t> finished{0};
      std::vector<std::thread> clients;
      for (std::size_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
          for (int i = 0; i < kOpsPerClient; ++i) {
            // A fired wedge-external(t) silences this client: it stops
            // submitting and the others must shut down around its absence.
            if (faults.external_wedged(t)) break;
            ds::BatchedCounter::Op op;
            op.delta = 1;
            try {
              switch ((static_cast<int>(t) + i) % 4) {
                case 0:
                  domain.submit(t, op);
                  break;
                case 1:
                  domain.submit_until(t, op,
                                      std::chrono::steady_clock::now() +
                                          std::chrono::microseconds(500));
                  break;
                case 2:
                  domain.try_submit(t, op);
                  break;
                default: {
                  RetryPolicy policy;
                  policy.seed = seed;
                  policy.max_retries = 2;
                  policy.base_spins = 16;
                  domain.submit_with_retry(t, op, policy);
                  break;
                }
              }
              ok.fetch_add(1, std::memory_order_relaxed);
            } catch (const OpTimedOut&) {
            } catch (const DomainOverloaded&) {
            } catch (const DomainClosed&) {
              break;  // includes DomainQuarantined
            } catch (const hooks::InjectedFault&) {
            } catch (const std::bad_alloc&) {
              bad_alloc_seen.store(true, std::memory_order_relaxed);
            }
          }
          if (finished.fetch_add(1) + 1 == kClients) domain.shutdown();
        });
      }
      try {
        sched.run([&] { domain.serve(); });
      } catch (...) {
        // An allocation fault can surface from the run itself (e.g. the
        // root frame); the domain must still unblock every submitter.
        domain.quarantine();
      }
      for (auto& th : clients) th.join();
      succeeded = ok.load();
      saw_bad_alloc = bad_alloc_seen.load();
      counter_value = counter.value_unsafe();
      st = domain.stats();
    }  // scheduler destroyed: hook stream quiescent

    // Never a leaked op: every published record resolved exactly one way.
    ASSERT_EQ(st.ops_served, st.ops_succeeded + st.ops_failed + st.ops_timed_out)
        << "seed " << seed << "\n" << faults.describe();
    ASSERT_EQ(st.ops_succeeded, succeeded)
        << "seed " << seed << "\n" << faults.describe();
    // A bad_alloc can abort a batch mid-application, so the exact value
    // check applies only to fault-free-allocation runs.
    if (!saw_bad_alloc) {
      ASSERT_EQ(counter_value, static_cast<std::int64_t>(succeeded))
          << "seed " << seed << "\n" << faults.describe();
    }
    ASSERT_TRUE(session.auditor().clean())
        << "seed " << seed << "\n" << faults.describe() << "\n"
        << session.auditor().report();
    ASSERT_FALSE(session.watchdog().stalled())
        << "seed " << seed << "\n" << faults.describe() << "\n"
        << session.watchdog().report();
    total_fired += faults.fired_count();
  }
  hooks::install_observer(nullptr);
  hooks::test_faults().reset();

  // The engine genuinely injected: across the sweep a healthy majority of
  // schedules fired at least one action inside the run's event volume.
  EXPECT_GE(total_fired, kSeeds / 2) << total_fired;
}

// Three-way revoke race: the submitter's deadline-expiry CAS, the pump's
// claim CAS, and the exit drain's CAS all target the same Pending byte.
// Exactly one side wins each record; no Done is ever lost and no op resolves
// twice.  The perturber stretches the windows differently every seed.
TEST(ChaosSweep, ThreeWayRevokeRaceResolvesEveryOpExactlyOnce) {
  constexpr unsigned kWorkers = 2;
  constexpr std::uint64_t kIters = 150;
  constexpr std::size_t kClients = 2;
  constexpr int kOpsPerClient = 8;

  AuditSession session(kWorkers, 0, sweep_perturbation());
  session.install();
  for (std::uint64_t iter = 0; iter < kIters; ++iter) {
    session.reseed(iter);
    std::uint64_t succeeded = 0;
    std::int64_t counter_value = 0;
    ExternalStats st;
    {
      rt::Scheduler sched(kWorkers);
      ds::BatchedCounter counter(sched);
      ExternalDomain domain(sched, counter, kClients);

      std::atomic<std::uint64_t> ok{0};
      std::vector<std::thread> clients;
      for (std::size_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
          for (int i = 0; i < kOpsPerClient; ++i) {
            // Client 0 closes the domain mid-stream so the exit drain joins
            // the race for the remaining records.
            if (t == 0 && i == kOpsPerClient / 2) domain.shutdown();
            ds::BatchedCounter::Op op;
            op.delta = 1;
            try {
              domain.try_submit(t, op);  // expired deadline: revoke instantly
              ok.fetch_add(1, std::memory_order_relaxed);
            } catch (const OpTimedOut&) {
            } catch (const DomainClosed&) {
            }
          }
        });
      }
      sched.run([&] { domain.serve(); });
      for (auto& th : clients) th.join();
      succeeded = ok.load();
      counter_value = counter.value_unsafe();
      st = domain.stats();
    }
    ASSERT_EQ(st.ops_served, st.ops_succeeded + st.ops_failed + st.ops_timed_out)
        << "iter " << iter;
    // No lost Done: an op that returned success was applied exactly once,
    // and every revoked op was never applied.
    ASSERT_EQ(st.ops_succeeded, succeeded) << "iter " << iter;
    ASSERT_EQ(counter_value, static_cast<std::int64_t>(succeeded))
        << "iter " << iter;
    if (hooks::kEnabled) {
      ASSERT_TRUE(session.auditor().clean())
          << "iter " << iter << "\n" << session.auditor().report();
      ASSERT_FALSE(session.watchdog().stalled())
          << "iter " << iter << "\n" << session.watchdog().report();
    }
  }
  session.uninstall();
}

// Multi-domain sweep: hashmap + pq pumped on one scheduler, both shutdown
// orders (alternating by seed), 500 perturbed schedules.
TEST(ChaosSweep, MultiDomainPerturbedSweepBothShutdownOrders) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 500;
  constexpr int kClients = 2;
  constexpr std::int64_t kPer = 6;

  AuditSession session(kWorkers, 0, sweep_perturbation());
  session.install();
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    session.reseed(seed);
    {
      rt::Scheduler sched(kWorkers);
      ds::BatchedHashMap map(sched);
      ds::BatchedPriorityQueue pq(sched);
      ExternalDomain dmap(sched, map, kClients);
      ExternalDomain dpq(sched, pq, kClients);

      std::atomic<int> done{0};
      std::vector<std::thread> pool;
      for (int t = 0; t < kClients; ++t) {
        pool.emplace_back([&, t] {
          for (std::int64_t i = 0; i < kPer; ++i) {
            ds::BatchedHashMap::Op mop;
            mop.kind = ds::BatchedHashMap::Kind::Update;
            mop.key = i % 5;
            mop.value = 1;
            dmap.submit(static_cast<std::size_t>(t), mop);
            ds::BatchedPriorityQueue::Op qop;
            qop.kind = ds::BatchedPriorityQueue::Kind::Insert;
            qop.key = t * kPer + i;
            dpq.submit(static_cast<std::size_t>(t), qop);
          }
          if (done.fetch_add(1) + 1 == kClients) {
            if (seed % 2 == 0) {
              dmap.shutdown();
              dpq.shutdown();
            } else {
              dpq.shutdown();
              dmap.shutdown();
            }
          }
        });
      }
      sched.run([&] {
        rt::parallel_invoke([&] { dmap.serve(); }, [&] { dpq.serve(); });
      });
      for (auto& th : pool) th.join();

      ASSERT_EQ(dmap.ops_succeeded(),
                static_cast<std::uint64_t>(kClients * kPer))
          << "seed " << seed;
      ASSERT_EQ(dpq.ops_succeeded(),
                static_cast<std::uint64_t>(kClients * kPer))
          << "seed " << seed;
      ASSERT_EQ(pq.size_unsafe(), static_cast<std::size_t>(kClients * kPer))
          << "seed " << seed;
      std::int64_t total = 0;
      for (std::int64_t k = 0; k < 5; ++k) {
        total += map.get_unsafe(k).value_or(0);
      }
      ASSERT_EQ(total, kClients * kPer) << "seed " << seed;
    }
    ASSERT_TRUE(session.auditor().clean())
        << "seed " << seed << "\n" << session.auditor().report();
    ASSERT_FALSE(session.watchdog().stalled())
        << "seed " << seed << "\n" << session.watchdog().report();
  }
  session.uninstall();
}

// --- 4. Sharded front-end chaos ---------------------------------------------

// Forwards events to the fault engine only; the sharded test asserts exact
// counters rather than auditing the schedule model.
struct FaultOnlyObserver final : hooks::ScheduleObserver {
  FaultSchedule* faults;
  void on_event(const HookEvent& event) override { faults->on_event(event); }
};

// Satellite of the service front-end PR: one seeded run where timeouts,
// sheds, retries, and a quarantine ALL fire against a ShardRouter spanning a
// two-shard hashmap group and a one-shard counter group.
//
// Phase A runs before any pump exists, so its counters are exact in every
// build config: one try_submit timeout per shard, and an occupied
// counter-shard backlog that sheds a bounded-retry prober exactly
// max_retries + 1 times.  Phase B starts serve(), lets three clients race
// all four submit kinds through the router while a seeded FaultSchedule
// injects (in audit builds), quarantines the counter shard mid-run, and
// shuts down.  Afterward every shard must satisfy the resolution identity
// and the client-side ledger must account for every request it issued — a
// lost request would break one or the other.
TEST(ChaosSweep, ShardedFrontEndTimeoutsShedsRetriesAndQuarantine) {
  constexpr unsigned kWorkers = 4;
  constexpr std::size_t kClients = 3;
  constexpr int kOpsPerClient = 24;
  constexpr std::uint64_t kSeed = 2014;
  // tids: clients use [0, kClients); the blocker and the prober get their own.
  constexpr std::size_t kBlockerTid = kClients;
  constexpr std::size_t kProberTid = kClients + 1;

  rt::Scheduler sched(kWorkers);
  ds::BatchedHashMap map_a(sched);
  ds::BatchedHashMap map_b(sched);
  ds::BatchedCounter counter(sched);
  service::ShardRouter::Options ropt;
  ropt.max_threads = kClients + 2;
  ropt.domain.shed_threshold = 1;  // every shard sheds aggressively
  service::ShardRouter router(sched, ropt);
  const std::size_t g_map = router.add_group({&map_a, &map_b});
  const std::size_t g_ctr = router.add_group({&counter});
  const std::size_t ctr_shard = router.group_begin(g_ctr);

  // --- Phase A: deterministic timeout / shed / retry counters (no pump) ---
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    ds::BatchedCounter::Op probe;  // the record type is irrelevant: it is
    probe.delta = 0;               // revoked before any batch could run it
    EXPECT_THROW(router.domain(s).try_submit(kProberTid, probe), OpTimedOut);
    EXPECT_EQ(router.stats(s).ops_timed_out, 1u) << "shard " << s;
  }
  std::atomic<std::uint64_t> blocker_ok{0};
  std::thread blocker([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    try {
      router.submit(g_ctr, 0, kBlockerTid, op);
      blocker_ok.fetch_add(1);
    } catch (...) {
      // Quarantined before the pump got to it, or its batch drew an
      // injected fault: resolved either way, just not successfully.
    }
  });
  while (router.domain(ctr_shard).pending_depth() < 1) {
    std::this_thread::yield();
  }
  {
    RetryPolicy policy;
    policy.seed = kSeed;
    policy.max_retries = 2;
    policy.base_spins = 16;
    ds::BatchedCounter::Op op;
    op.delta = 1;
    EXPECT_THROW(router.submit_with_retry(g_ctr, 0, kProberTid, op, policy),
                 DomainOverloaded);
  }
  {
    const ExternalStats st = router.stats(ctr_shard);
    EXPECT_EQ(st.ops_shed, 3u);           // max_retries + 1 attempts, all shed
    EXPECT_EQ(st.retries_attempted, 2u);  // exactly the policy's budget
  }

  // --- Phase B: seeded chaos against the running front-end ---
  FaultSchedule::Options fopt;
  fopt.horizon_events = 1500;
  fopt.external_tids = kClients;
  FaultSchedule faults(kSeed, fopt);
  FaultOnlyObserver observer;
  observer.faults = &faults;
  hooks::install_observer(&observer);

  std::atomic<std::uint64_t> attempts{0}, ok{0}, failed{0}, timed{0}, shed{0};
  std::atomic<std::uint64_t> ok_ctr{0};
  std::atomic<bool> saw_bad_alloc{false};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerClient; ++i) {
        if (faults.external_wedged(t)) break;
        const bool to_ctr = i % 2 == 1;
        const std::size_t group = to_ctr ? g_ctr : g_map;
        const std::int64_t key = static_cast<std::int64_t>(t) * 101 + i * 7;
        ds::BatchedCounter::Op cop;
        cop.delta = 1;
        ds::BatchedHashMap::Op mop;
        mop.kind = ds::BatchedHashMap::Kind::Update;
        mop.key = key;
        mop.value = 1;
        OpRecordBase& op =
            to_ctr ? static_cast<OpRecordBase&>(cop) : mop;
        attempts.fetch_add(1, std::memory_order_relaxed);
        try {
          switch (i % 4) {
            case 0:
              router.submit(group, key, t, op);
              break;
            case 1:
              router.submit_until(group, key, t, op,
                                  std::chrono::steady_clock::now() +
                                      std::chrono::microseconds(500));
              break;
            case 2:
              router.domain_for(group, key).try_submit(t, op);
              break;
            default: {
              RetryPolicy policy;
              policy.seed = kSeed + t;
              policy.max_retries = 2;
              policy.base_spins = 16;
              router.submit_with_retry(group, key, t, op, policy);
              break;
            }
          }
          ok.fetch_add(1, std::memory_order_relaxed);
          if (to_ctr) ok_ctr.fetch_add(1, std::memory_order_relaxed);
        } catch (const OpTimedOut&) {
          timed.fetch_add(1, std::memory_order_relaxed);
        } catch (const DomainOverloaded&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } catch (const DomainClosed&) {
          // Quarantined counter shard or post-shutdown: resolved, failed.
          failed.fetch_add(1, std::memory_order_relaxed);
        } catch (const hooks::InjectedFault&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::bad_alloc&) {
          saw_bad_alloc.store(true, std::memory_order_relaxed);
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread controller([&] {
    // Quarantine the counter shard mid-run: once some traffic has flowed,
    // or promptly if the chaos stalls the clients first.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    while (attempts.load(std::memory_order_relaxed) <
               kClients * kOpsPerClient / 2 &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::yield();
    }
    router.quarantine(ctr_shard);
    for (auto& c : clients) c.join();
    router.shutdown();
  });
  try {
    sched.run([&] { router.serve(); });
  } catch (...) {
    // An injected allocation fault can surface from the run itself; every
    // submitter must still be unblocked.
    for (std::size_t s = 0; s < router.num_shards(); ++s) {
      router.quarantine(s);
    }
  }
  controller.join();
  blocker.join();
  hooks::install_observer(nullptr);

  // The quarantine fired: the counter shard is closed (shutdown closes the
  // rest), and closed-ness is what rejected the late counter traffic above.
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_TRUE(router.domain(s).closed());
  }

  // No lost request, domain side: every shard's published records resolved
  // exactly one way, chaos or not.
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    const ExternalStats st = router.stats(s);
    ASSERT_EQ(st.ops_served,
              st.ops_succeeded + st.ops_failed + st.ops_timed_out)
        << "shard " << s << "\n" << faults.describe();
  }
  // No lost request, client side: every attempt resolved to exactly one
  // outcome, and the domains' success count matches the clients' ledger
  // plus the phase-A blocker (the only other successful submitter).
  ASSERT_EQ(attempts.load(),
            ok.load() + failed.load() + timed.load() + shed.load());
  ASSERT_EQ(router.total_stats().ops_succeeded,
            ok.load() + blocker_ok.load())
      << faults.describe();
  // An injected bad_alloc can abort a batch mid-application; only
  // allocation-clean runs pin the exact structure state.
  if (!saw_bad_alloc.load()) {
    EXPECT_EQ(counter.value_unsafe(),
              static_cast<std::int64_t>(ok_ctr.load() + blocker_ok.load()));
  }
}

}  // namespace
}  // namespace batcher
