// Tests for the flat-combining and contended-concurrent simulators, plus the
// cross-scheduler comparisons that underpin the paper's §7 claims.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"
#include "sim/sim_concurrent.hpp"
#include "sim/sim_flatcomb.hpp"

namespace batcher::sim {
namespace {

TEST(SimFlatComb, CompletesAndConservesOps) {
  Dag core = build_parallel_loop_with_ds(128, 2, 1, 1);
  SkipListCostModel model(1 << 10);
  const SimResult res = simulate_flatcomb(core, model, 4, 1);
  EXPECT_EQ(res.batch_ops, core.num_ds_nodes());
  EXPECT_GT(res.batches, 0);
  // Combined work is sequential: busy_batch = sum of per-op costs.
  EXPECT_GT(res.busy_batch, 0);
}

TEST(SimFlatComb, Deterministic) {
  Dag core = build_parallel_loop_with_ds(64, 1, 1, 1);
  SkipListCostModel m1(1 << 10), m2(1 << 10);
  const SimResult a = simulate_flatcomb(core, m1, 4, 5);
  const SimResult b = simulate_flatcomb(core, m2, 4, 5);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SimFlatComb, BatcherBeatsFlatCombiningWithManyWorkers) {
  // §7: flat combining's sequential batches stop scaling; BATCHER's parallel
  // batches keep winning as P grows — on a ds-dominated workload.
  Dag core = build_parallel_loop_with_ds(1024, 1, 1, 1);
  SkipListCostModel m_b(1 << 20), m_f(1 << 20);
  BatcherSimConfig cfg;
  cfg.workers = 16;
  const SimResult batcher_res = simulate_batcher(core, m_b, cfg);
  const SimResult fc_res = simulate_flatcomb(core, m_f, 16, 1);
  EXPECT_LT(batcher_res.makespan, fc_res.makespan);
}

TEST(SimConcurrent, CompletesAllWork) {
  Dag core = build_parallel_loop_with_ds(256, 2, 1, 1);
  ConcurrentSimConfig cfg;
  cfg.workers = 4;
  const SimResult res = simulate_concurrent(core, cfg);
  // Non-ds nodes execute exactly once each; ds accesses burn >= 1 step each.
  EXPECT_EQ(res.busy_core, core.work() - core.num_ds_nodes());
  EXPECT_GE(res.busy_batch, core.num_ds_nodes());
}

TEST(SimConcurrent, ContentionSerializesAccesses) {
  // With contention_factor = 1, n simultaneous accesses cost Θ(n) each in
  // the worst case: total ds time is superlinear vs. the uncontended run.
  Dag core = build_parallel_loop_with_ds(512, 1, 1, 1);
  ConcurrentSimConfig contended;
  contended.workers = 8;
  contended.contention_factor = 4;
  ConcurrentSimConfig ideal = contended;
  ideal.contention_factor = 0;
  const SimResult r_cont = simulate_concurrent(core, contended);
  const SimResult r_ideal = simulate_concurrent(core, ideal);
  EXPECT_GT(r_cont.busy_batch, 2 * r_ideal.busy_batch);
  EXPECT_GT(r_cont.makespan, r_ideal.makespan);
}

TEST(SimConcurrent, IdealConcurrentMatchesPlainWorkStealingShape) {
  Dag core = build_parallel_loop_with_ds(512, 4, 2, 1);
  ConcurrentSimConfig cfg;
  cfg.workers = 8;
  cfg.contention_factor = 0;
  cfg.base_cost = 1;
  const SimResult res = simulate_concurrent(core, cfg);
  // With unit-cost uncontended accesses the whole dag behaves like a plain
  // fork/join dag: near-linear speedup.
  EXPECT_LE(res.makespan, core.work() / 8 + 8 * core.span());
}

TEST(SimComparison, BatcherBeatsContendedConcurrentAtScale) {
  // The paper's headline: with contended concurrent access the program is
  // Ω(n); with BATCHER it scales.  Compare 16-worker makespans on a
  // ds-dominated loop.
  const std::int64_t n = 2048;
  Dag core = build_parallel_loop_with_ds(n, 1, 1, 1);

  SkipListCostModel m_b(1 << 10);
  BatcherSimConfig bcfg;
  bcfg.workers = 16;
  const SimResult r_batcher = simulate_batcher(core, m_b, bcfg);

  ConcurrentSimConfig ccfg;
  ccfg.workers = 16;
  ccfg.base_cost = ilog2(1 << 10);  // same per-op cost, but serializing
  ccfg.contention_factor = ilog2(1 << 10);
  const SimResult r_conc = simulate_concurrent(core, ccfg);

  EXPECT_LT(r_batcher.makespan, r_conc.makespan);
}

}  // namespace
}  // namespace batcher::sim
