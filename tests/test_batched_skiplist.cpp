// Tests for the batched skip list (paper §7).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "ds/batched_skiplist.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

using Key = BatchedSkipList::Key;

TEST(BatchedSkipList, UnsafeInsertAndContains) {
  rt::Scheduler sched(1);
  BatchedSkipList list(sched);
  EXPECT_TRUE(list.insert_unsafe(5));
  EXPECT_TRUE(list.insert_unsafe(1));
  EXPECT_TRUE(list.insert_unsafe(9));
  EXPECT_FALSE(list.insert_unsafe(5));  // duplicate
  EXPECT_TRUE(list.contains_unsafe(1));
  EXPECT_TRUE(list.contains_unsafe(5));
  EXPECT_TRUE(list.contains_unsafe(9));
  EXPECT_FALSE(list.contains_unsafe(4));
  EXPECT_EQ(list.size_unsafe(), 3u);
  EXPECT_TRUE(list.check_invariants());
}

class SkipListParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(SkipListParam, ParallelInsertsMatchReferenceSet) {
  rt::Scheduler sched(GetParam());
  BatchedSkipList list(sched);
  constexpr std::int64_t kN = 3000;
  Xoshiro256 rng(17);
  std::vector<Key> keys(kN);
  for (auto& k : keys) k = static_cast<Key>(rng.next_below(kN * 2));
  std::set<Key> reference(keys.begin(), keys.end());

  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      list.insert(keys[static_cast<std::size_t>(i)]);
    });
  });
  EXPECT_EQ(list.size_unsafe(), reference.size());
  EXPECT_TRUE(list.check_invariants());
  for (Key k : reference) EXPECT_TRUE(list.contains_unsafe(k));
  EXPECT_FALSE(list.contains_unsafe(kN * 2 + 5));
}

TEST_P(SkipListParam, InsertReportsNewness) {
  rt::Scheduler sched(GetParam());
  BatchedSkipList list(sched);
  constexpr std::int64_t kN = 1000;
  std::atomic<std::int64_t> fresh{0};
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      if (list.insert(i % 100)) fresh.fetch_add(1);
    });
  });
  EXPECT_EQ(fresh.load(), 100);
  EXPECT_EQ(list.size_unsafe(), 100u);
}

TEST_P(SkipListParam, MultiInsertHandlesManyKeysPerRecord) {
  // The paper's experiment creates 100 insertion records per BATCHIFY call.
  rt::Scheduler sched(GetParam());
  BatchedSkipList list(sched);
  constexpr std::int64_t kCalls = 100;
  constexpr std::int64_t kPerCall = 100;
  std::vector<std::vector<Key>> blocks(kCalls);
  Xoshiro256 rng(23);
  std::set<Key> reference;
  for (auto& block : blocks) {
    block.resize(kPerCall);
    for (auto& k : block) {
      k = static_cast<Key>(rng.next_below(1u << 20));
      reference.insert(k);
    }
  }
  sched.run([&] {
    rt::parallel_for(0, kCalls, [&](std::int64_t i) {
      list.multi_insert(blocks[static_cast<std::size_t>(i)]);
    });
  });
  EXPECT_EQ(list.size_unsafe(), reference.size());
  EXPECT_TRUE(list.check_invariants());
  for (Key k : reference) ASSERT_TRUE(list.contains_unsafe(k));
}

TEST_P(SkipListParam, EraseRemovesAndReports) {
  rt::Scheduler sched(GetParam());
  BatchedSkipList list(sched);
  for (Key k = 0; k < 500; ++k) list.insert_unsafe(k);
  std::atomic<std::int64_t> hits{0};
  sched.run([&] {
    rt::parallel_for(0, 500, [&](std::int64_t i) {
      if (list.erase(i * 2)) hits.fetch_add(1);  // even keys 0..998; >=500 miss
    });
  });
  EXPECT_EQ(hits.load(), 250);
  EXPECT_EQ(list.size_unsafe(), 250u);
  EXPECT_TRUE(list.check_invariants());
  for (Key k = 0; k < 500; ++k) {
    EXPECT_EQ(list.contains_unsafe(k), k % 2 == 1) << "key " << k;
  }
}

TEST_P(SkipListParam, MixedWorkloadAgainstPhaseAwareOracle) {
  // contains -> erase -> insert within a batch, so a contains can race with
  // a same-turn erase/insert only across batches.  We avoid key overlap
  // between op kinds so results are deterministic regardless of batching.
  rt::Scheduler sched(GetParam());
  BatchedSkipList list(sched);
  for (Key k = 0; k < 300; ++k) list.insert_unsafe(k * 3);  // multiples of 3
  std::atomic<std::int64_t> contains_hits{0}, erase_hits{0}, insert_new{0};
  sched.run([&] {
    rt::parallel_for(0, 300, [&](std::int64_t i) {
      switch (i % 3) {
        case 0:  // contains on untouched keys
          if (list.contains(i * 3)) contains_hits.fetch_add(1);
          break;
        case 1:  // erase keys never queried
          if (list.erase(i * 3)) erase_hits.fetch_add(1);
          break;
        default:  // insert brand-new keys
          if (list.insert(i * 3 + 1)) insert_new.fetch_add(1);
          break;
      }
    });
  });
  EXPECT_EQ(contains_hits.load(), 100);
  EXPECT_EQ(erase_hits.load(), 100);
  EXPECT_EQ(insert_new.load(), 100);
  EXPECT_EQ(list.size_unsafe(), 300u - 100u + 100u);
  EXPECT_TRUE(list.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SkipListParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedSkipList, BatchWithDuplicateInsertsFirstWins) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  using Op = BatchedSkipList::Op;
  Op a, b, c;
  a.kind = b.kind = c.kind = BatchedSkipList::Kind::Insert;
  a.key = b.key = 7;
  c.key = 9;
  OpRecordBase* ops[3] = {&a, &b, &c};
  list.run_batch(ops, 3);
  EXPECT_TRUE(a.found);
  EXPECT_FALSE(b.found);
  EXPECT_TRUE(c.found);
  EXPECT_EQ(list.size_unsafe(), 2u);
  EXPECT_TRUE(list.check_invariants());
}

TEST(BatchedSkipList, BatchPhaseOrderContainsSeesPreState) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  list.insert_unsafe(10);
  using Op = BatchedSkipList::Op;
  Op contains_new, contains_old, erase_old, insert_new;
  contains_new.kind = BatchedSkipList::Kind::Contains;
  contains_new.key = 20;  // inserted in this same batch
  contains_old.kind = BatchedSkipList::Kind::Contains;
  contains_old.key = 10;  // erased in this same batch
  erase_old.kind = BatchedSkipList::Kind::Erase;
  erase_old.key = 10;
  insert_new.kind = BatchedSkipList::Kind::Insert;
  insert_new.key = 20;
  OpRecordBase* ops[4] = {&insert_new, &erase_old, &contains_new, &contains_old};
  list.run_batch(ops, 4);
  EXPECT_FALSE(contains_new.found) << "contains must see pre-batch state";
  EXPECT_TRUE(contains_old.found) << "contains must see pre-batch state";
  EXPECT_TRUE(erase_old.found);
  EXPECT_TRUE(insert_new.found);
  EXPECT_TRUE(list.contains_unsafe(20));
  EXPECT_FALSE(list.contains_unsafe(10));
}

TEST(BatchedSkipList, SortedAndReverseSortedBulkInserts) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  std::vector<Key> asc(1000), desc(1000);
  for (int i = 0; i < 1000; ++i) {
    asc[static_cast<std::size_t>(i)] = i;
    desc[static_cast<std::size_t>(i)] = 5000 - i;
  }
  sched.run([&] {
    list.multi_insert(asc);
    list.multi_insert(desc);
  });
  EXPECT_EQ(list.size_unsafe(), 2000u);
  EXPECT_TRUE(list.check_invariants());
}

TEST(BatchedSkipList, AdjacentAndNegativeKeys) {
  rt::Scheduler sched(2);
  BatchedSkipList list(sched);
  sched.run([&] {
    rt::parallel_for(-50, 50, [&](std::int64_t i) { list.insert(i); });
  });
  EXPECT_EQ(list.size_unsafe(), 100u);
  EXPECT_TRUE(list.check_invariants());
  EXPECT_TRUE(list.contains_unsafe(-50));
  EXPECT_TRUE(list.contains_unsafe(49));
  EXPECT_FALSE(list.contains_unsafe(50));
}

TEST(BatchedSkipList, SuccessorQueries) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  for (Key k = 0; k < 100; ++k) list.insert_unsafe(k * 10);  // 0,10,...,990
  std::atomic<std::int64_t> bad{0};
  sched.run([&] {
    rt::parallel_for(0, 100, [&](std::int64_t i) {
      // Probe between stored keys: successor is the next multiple of 10.
      auto s = list.successor(i * 10 - 5);
      if (!s.has_value() || *s != i * 10) bad.fetch_add(1);
      // Exact probe returns the key itself.
      auto e = list.successor(i * 10);
      if (!e.has_value() || *e != i * 10) bad.fetch_add(1);
    });
    EXPECT_FALSE(list.successor(991).has_value());
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(BatchedSkipList, RangeCountQueries) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  for (Key k = 0; k < 1000; ++k) list.insert_unsafe(k);
  std::atomic<std::int64_t> bad{0};
  sched.run([&] {
    rt::parallel_for(0, 100, [&](std::int64_t i) {
      if (list.range_count(i, i + 49) != 50) bad.fetch_add(1);
      if (list.range_count(i, i) != 1) bad.fetch_add(1);
      if (list.range_count(1000 + i, 2000) != 0) bad.fetch_add(1);
    });
    EXPECT_EQ(list.range_count(-100, 5000), 1000);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(BatchedSkipList, ReadsSeePreBatchStateInMixedBatch) {
  rt::Scheduler sched(2);
  BatchedSkipList list(sched);
  list.insert_unsafe(10);
  list.insert_unsafe(20);
  using Op = BatchedSkipList::Op;
  Op erase10, range_probe, succ_probe;
  erase10.kind = BatchedSkipList::Kind::Erase;
  erase10.key = 10;
  range_probe.kind = BatchedSkipList::Kind::RangeCount;
  range_probe.key = 0;
  range_probe.key2 = 100;
  succ_probe.kind = BatchedSkipList::Kind::Successor;
  succ_probe.key = 5;
  OpRecordBase* ops[3] = {&erase10, &range_probe, &succ_probe};
  list.run_batch(ops, 3);
  EXPECT_EQ(range_probe.count, 2) << "reads run before the erase phase";
  EXPECT_EQ(*succ_probe.out_key, 10);
  EXPECT_TRUE(erase10.found);
  EXPECT_FALSE(list.contains_unsafe(10));
}

TEST(BatchedSkipList, EraseEverythingThenReinsert) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  for (Key k = 0; k < 200; ++k) list.insert_unsafe(k);
  sched.run([&] {
    rt::parallel_for(0, 200, [&](std::int64_t i) { list.erase(i); });
  });
  EXPECT_EQ(list.size_unsafe(), 0u);
  EXPECT_TRUE(list.check_invariants());
  sched.run([&] {
    rt::parallel_for(0, 200, [&](std::int64_t i) { list.insert(i); });
  });
  EXPECT_EQ(list.size_unsafe(), 200u);
  EXPECT_TRUE(list.check_invariants());
}

}  // namespace
}  // namespace batcher::ds
