// Randomized stress tests for the runtime + BATCHER stack: irregular nested
// parallelism, mixed structure access from arbitrary recursion shapes, and
// repeated scheduler lifecycles.  These exist to shake out interleaving bugs
// that the deterministic unit tests can't reach.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "ds/batched_counter.hpp"
#include "ds/batched_om.hpp"
#include "ds/batched_wbtree.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

// Irregular recursion: every node flips a seeded coin for its arity and
// whether to do leaf work, giving a different dag shape per seed while
// keeping the leaf count checkable.
std::int64_t irregular(std::uint64_t seed, int depth,
                       std::atomic<std::int64_t>& leaves) {
  if (depth <= 0) {
    leaves.fetch_add(1);
    return 1;
  }
  SplitMix64 mix(seed);
  const std::uint64_t a = mix.next();
  std::int64_t left = 0, right = 0;
  if (a & 1) {
    rt::parallel_invoke(
        [&] { left = irregular(a, depth - 1, leaves); },
        [&] { right = irregular(a ^ 0x9e37, depth - 2, leaves); });
  } else {
    left = irregular(a, depth - 1, leaves);
    right = irregular(a ^ 0x79b9, depth - 3, leaves);
  }
  return left + right;
}

class StressSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeed, IrregularRecursionCountsLeavesExactly) {
  rt::Scheduler sched(4);
  std::atomic<std::int64_t> leaves{0};
  std::int64_t returned = 0;
  sched.run([&] { returned = irregular(GetParam(), 14, leaves); });
  EXPECT_EQ(returned, leaves.load());
  EXPECT_GT(returned, 0);
}

TEST_P(StressSeed, StructureAccessFromIrregularRecursion) {
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched);
  ds::BatchedWBTree tree(sched);
  std::atomic<std::int64_t> inserted{0};

  std::function<void(std::uint64_t, int)> go = [&](std::uint64_t seed,
                                                   int depth) {
    if (depth <= 0) {
      counter.increment(1);
      // Mix of colliding and distinct keys.
      if (tree.insert(static_cast<std::int64_t>(seed % 997))) {
        inserted.fetch_add(1);
      }
      return;
    }
    SplitMix64 mix(seed);
    const std::uint64_t a = mix.next();
    rt::parallel_invoke([&] { go(a, depth - 1); },
                        [&] { go(a ^ 0x5bd1, depth - 2); });
  };
  sched.run([&] { go(GetParam() * 7919 + 1, 12); });

  EXPECT_EQ(static_cast<std::size_t>(inserted.load()), tree.size_unsafe());
  EXPECT_GT(counter.value_unsafe(), 0);
  EXPECT_TRUE(tree.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed,
                         ::testing::Values(1u, 7u, 42u, 1337u));

TEST(RuntimeStress, RapidSchedulerChurnWithBatching) {
  for (unsigned workers : {1u, 3u, 8u}) {
    for (int round = 0; round < 3; ++round) {
      rt::Scheduler sched(workers);
      ds::BatchedCounter counter(sched);
      sched.run([&] {
        rt::parallel_for(0, 300, [&](std::int64_t) { counter.increment(1); });
      });
      ASSERT_EQ(counter.value_unsafe(), 300);
    }
  }
}

TEST(RuntimeStress, ThreeStructuresInterleavedUnderOneScheduler) {
  rt::Scheduler sched(8);
  ds::BatchedCounter counter(sched);
  ds::BatchedWBTree tree(sched);
  ds::BatchedOrderMaintenance om(sched);
  constexpr std::int64_t kN = 900;
  std::atomic<std::int64_t> om_inserts{0};
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      switch (i % 3) {
        case 0:
          counter.increment(1);
          break;
        case 1:
          tree.insert(i);
          break;
        default: {
          const auto h = om.insert_after(om.base());
          if (h != ds::BatchedOrderMaintenance::kInvalidHandle) {
            om_inserts.fetch_add(1);
          }
          break;
        }
      }
    });
  });
  EXPECT_EQ(counter.value_unsafe(), kN / 3);
  EXPECT_EQ(tree.size_unsafe(), static_cast<std::size_t>(kN / 3));
  EXPECT_EQ(om_inserts.load(), kN / 3);
  EXPECT_EQ(om.size_unsafe(), static_cast<std::size_t>(kN / 3) + 1);
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_TRUE(om.check_invariants());
}

TEST(RuntimeStress, DeeplyNestedParallelForWithBatchify) {
  // parallel_for inside parallel_for, both levels calling batchify.
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched);
  sched.run([&] {
    rt::parallel_for(0, 20, [&](std::int64_t) {
      rt::parallel_for(0, 20, [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/1);
      counter.increment(1);
    },
                     /*grain=*/1);
  });
  EXPECT_EQ(counter.value_unsafe(), 20 * 20 + 20);
}

TEST(RuntimeStress, HeavyBopSpawnsDeepBatchDags) {
  // A structure whose BOP itself runs a deep parallel recursion: trapped
  // workers must execute this batch dag without touching core work.
  struct DeepBop final : BatchedStructure {
    std::atomic<std::int64_t> total{0};
    void run_batch(OpRecordBase* const* /*ops*/, std::size_t count) override {
      std::atomic<std::int64_t> leaves{0};
      irregular(count, 10, leaves);
      total.fetch_add(leaves.load());
    }
  } probe;
  rt::Scheduler sched(4);
  Batcher batcher(sched, probe);
  struct NoopOp : OpRecordBase {};
  sched.run([&] {
    rt::parallel_for(0, 200, [&](std::int64_t) {
      NoopOp op;
      batcher.batchify(op);
    });
  });
  EXPECT_GT(probe.total.load(), 0);
}

}  // namespace
}  // namespace batcher
