// Service front-end tests: ShardRouter routing/pumping and the open-loop
// load generator (DESIGN.md §15).
//
// Registered under the "service/" ctest prefix.  The suite pins the three
// contracts the bench relies on: routing is pure and in-bounds, serve()
// keeps every shard live with fewer pump tasks than shards, and the
// client-side ledger ok + failed + timed_out + shed == requests mirrors the
// per-shard resolution identity so no request is lost between the two.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "ds/batched_counter.hpp"
#include "ds/batched_hashmap.hpp"
#include "runtime/scheduler.hpp"
#include "service/load_gen.hpp"
#include "service/shard_router.hpp"

namespace batcher {
namespace {

using service::LoadGenConfig;
using service::LoadGenStats;
using service::Outcome;
using service::ShardRouter;
using service::SloResult;

// --- routing ---------------------------------------------------------------

TEST(ServiceRouter, RoutingIsPureInBoundsAndCoversShards) {
  rt::Scheduler sched(1);
  std::vector<std::unique_ptr<ds::BatchedCounter>> counters;
  std::vector<BatchedStructure*> shards;
  for (int i = 0; i < 4; ++i) {
    counters.push_back(std::make_unique<ds::BatchedCounter>(sched));
    shards.push_back(counters.back().get());
  }
  ShardRouter::Options opt;
  opt.max_threads = 1;
  ShardRouter router(sched, opt);
  const std::size_t g0 = router.add_group({shards[0], shards[1], shards[2]});
  const std::size_t g1 = router.add_group({shards[3]});

  ASSERT_EQ(router.num_groups(), 2u);
  ASSERT_EQ(router.num_shards(), 4u);
  EXPECT_EQ(router.group_begin(g0), 0u);
  EXPECT_EQ(router.group_size(g0), 3u);
  EXPECT_EQ(router.group_begin(g1), 3u);
  EXPECT_EQ(router.group_size(g1), 1u);

  std::set<std::size_t> seen;
  for (std::int64_t key = 0; key < 512; ++key) {
    const std::size_t shard = router.shard_of(g0, key);
    EXPECT_GE(shard, router.group_begin(g0));
    EXPECT_LT(shard, router.group_begin(g0) + router.group_size(g0));
    // Pure: the same (group, key) maps to the same shard every time, so a
    // retry after a shed lands on the backlog it was shed from.
    EXPECT_EQ(router.shard_of(g0, key), shard);
    seen.insert(shard);
    // A single-shard group routes everything to its one shard.
    EXPECT_EQ(router.shard_of(g1, key), 3u);
  }
  // SplitMix64 over 512 keys must not strand a 3-shard group's shard.
  EXPECT_EQ(seen.size(), 3u);

  // Adjacent raw keys decorrelate: the hash, not key arithmetic, picks the
  // shard, so at least two of keys {0,1,2} land on distinct shards.
  std::set<std::size_t> adjacent{router.shard_of(g0, 0), router.shard_of(g0, 1),
                                 router.shard_of(g0, 2)};
  EXPECT_GT(adjacent.size(), 1u);
}

// --- multi-shard pump ------------------------------------------------------

TEST(ServiceRouter, OnePumpTaskKeepsFourShardsLive) {
  constexpr std::size_t kClients = 4;
  constexpr std::int64_t kPerClient = 64;
  rt::Scheduler sched(2);
  std::vector<std::unique_ptr<ds::BatchedCounter>> counters;
  std::vector<BatchedStructure*> shards;
  for (int i = 0; i < 4; ++i) {
    counters.push_back(std::make_unique<ds::BatchedCounter>(sched));
    shards.push_back(counters.back().get());
  }
  ShardRouter::Options opt;
  opt.max_threads = kClients;
  opt.pump_tasks = 1;  // fewer pumps than shards: one task round-robins all 4
  ShardRouter router(sched, opt);
  const std::size_t group = router.add_group(shards);

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (std::int64_t i = 0; i < kPerClient; ++i) {
        ds::BatchedCounter::Op op;
        op.delta = 1;
        router.submit(group, static_cast<std::int64_t>(t) * kPerClient + i, t,
                      op);
        EXPECT_GE(op.result, 1);
      }
    });
  }
  std::thread controller([&] {
    for (auto& c : clients) c.join();
    router.shutdown();
  });
  sched.run([&] { router.serve(); });
  controller.join();

  const ExternalStats total = router.total_stats();
  EXPECT_EQ(total.ops_succeeded, kClients * kPerClient);
  EXPECT_EQ(total.ops_served,
            total.ops_succeeded + total.ops_failed + total.ops_timed_out);
  std::int64_t sum = 0;
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    const ExternalStats st = router.stats(s);
    // Per-shard resolution identity — the router only picks the domain.
    EXPECT_EQ(st.ops_served,
              st.ops_succeeded + st.ops_failed + st.ops_timed_out)
        << "shard " << s;
    // 256 hashed keys over 4 shards: every shard must have seen traffic.
    EXPECT_GT(st.ops_served, 0u) << "shard " << s;
    sum += counters[s]->value_unsafe();
  }
  EXPECT_EQ(sum, static_cast<std::int64_t>(kClients * kPerClient));
}

TEST(ServiceRouter, ServeDrainsMultipleGroupsBothShutdownOrders) {
  // Two groups of different shard counts drain cleanly whether shutdown
  // happens before serve() starts scanning or strictly after traffic.
  for (const bool shutdown_first : {true, false}) {
    rt::Scheduler sched(2);
    std::vector<std::unique_ptr<ds::BatchedCounter>> counters;
    for (int i = 0; i < 3; ++i) {
      counters.push_back(std::make_unique<ds::BatchedCounter>(sched));
    }
    ShardRouter::Options opt;
    opt.max_threads = 2;
    ShardRouter router(sched, opt);
    const std::size_t g0 =
        router.add_group({counters[0].get(), counters[1].get()});
    const std::size_t g1 = router.add_group({counters[2].get()});

    std::thread driver;
    if (shutdown_first) {
      router.shutdown();
    } else {
      driver = std::thread([&] {
        ds::BatchedCounter::Op a, b;
        a.delta = 1;
        b.delta = 5;
        router.submit(g0, 17, 0, a);
        router.submit(g1, 17, 1, b);
        EXPECT_EQ(a.result, 1);
        EXPECT_EQ(b.result, 5);
        router.shutdown();
      });
    }
    sched.run([&] { router.serve(); });
    if (driver.joinable()) driver.join();
    if (!shutdown_first) {
      EXPECT_EQ(router.total_stats().ops_succeeded, 2u);
      EXPECT_EQ(counters[2]->value_unsafe(), 5);
    }
    for (std::size_t s = 0; s < router.num_shards(); ++s) {
      EXPECT_TRUE(router.domain(s).closed());
    }
  }
}

// --- submit_slo classification ---------------------------------------------

TEST(ServiceSlo, ClassifiesTimeoutShedAndFailure) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain::Options dopt;
  dopt.shed_threshold = 1;
  ExternalDomain domain(sched, counter, 3, dopt);
  Xoshiro256 rng(99);
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_spins = 8;

  // No pump claims it: the deadline revokes the published op -> kTimedOut.
  {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    const SloResult r = service::submit_slo(
        domain, 0, op,
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2),
        policy, rng);
    EXPECT_EQ(r.outcome, Outcome::kTimedOut);
    EXPECT_EQ(domain.stats().ops_timed_out, 1u);
  }

  // Backlog pinned at the threshold: every attempt sheds, the retry budget
  // runs out -> kShed with policy.max_retries retries recorded.
  std::thread blocker([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    EXPECT_THROW(domain.submit(0, op), DomainClosed);
  });
  while (domain.pending_depth() < 1) std::this_thread::yield();
  {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    const SloResult r = service::submit_slo(
        domain, 1, op,
        std::chrono::steady_clock::now() + std::chrono::seconds(5), policy,
        rng);
    EXPECT_EQ(r.outcome, Outcome::kShed);
    EXPECT_EQ(r.retries, policy.max_retries);
  }

  // Closed domain -> kFailed (the request resolved, unsuccessfully).
  domain.shutdown();
  blocker.join();
  {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    const SloResult r = service::submit_slo(
        domain, 2, op,
        std::chrono::steady_clock::now() + std::chrono::seconds(1), policy,
        rng);
    EXPECT_EQ(r.outcome, Outcome::kFailed);
  }
  const ExternalStats st = domain.stats();
  EXPECT_EQ(st.ops_served,
            st.ops_succeeded + st.ops_failed + st.ops_timed_out);
}

// --- open-loop generator ---------------------------------------------------

TEST(ServiceLoadGen, LedgerConservesEveryRequestAcrossShapes) {
  for (const sim::Shape shape :
       {sim::Shape::Uniform, sim::Shape::Zipfian, sim::Shape::FlashCrowd}) {
    LoadGenConfig cfg;
    cfg.shape = shape;
    cfg.requests = 256;
    cfg.seed = 42;
    cfg.clients = 3;
    cfg.rate = 2e6;  // fast replay: this test checks the ledger, not pacing
    std::atomic<std::uint64_t> calls{0};
    const LoadGenStats stats = service::run_open_loop(
        cfg, [&](unsigned client, const sim::OpDesc& op,
                 std::chrono::steady_clock::time_point /*deadline*/,
                 Xoshiro256& /*rng*/) {
          EXPECT_LT(client, cfg.clients);
          EXPECT_GE(op.key, 0);
          EXPECT_LT(op.key, cfg.key_space);
          const std::uint64_t i = calls.fetch_add(1);
          SloResult r;
          // Deterministic outcome mix: every class must be counted once
          // per four calls, whatever thread interleaving happened.
          switch (i % 4) {
            case 0: r.outcome = Outcome::kOk; break;
            case 1: r.outcome = Outcome::kFailed; break;
            case 2: r.outcome = Outcome::kTimedOut; break;
            default: r.outcome = Outcome::kShed; r.retries = 2; break;
          }
          return r;
        });
    EXPECT_EQ(calls.load(), 256u);
    EXPECT_EQ(stats.requests(), 256u);
    EXPECT_EQ(stats.ok, 64u);
    EXPECT_EQ(stats.failed, 64u);
    EXPECT_EQ(stats.timed_out, 64u);
    EXPECT_EQ(stats.shed, 64u);
    EXPECT_EQ(stats.retries, 128u);
    // Every request records a latency sample, even unsuccessful ones.
    EXPECT_EQ(stats.latency.count(), 256u);
    EXPECT_GT(stats.wall_seconds, 0.0);
  }
}

// --- end to end ------------------------------------------------------------

TEST(ServiceEndToEnd, OpenLoopAgainstShardedRouterLosesNothing) {
  constexpr unsigned kClients = 3;
  constexpr std::int64_t kRequests = 300;
  rt::Scheduler sched(2);
  std::vector<std::unique_ptr<ds::BatchedHashMap>> maps;
  std::vector<BatchedStructure*> shards;
  for (int i = 0; i < 2; ++i) {
    maps.push_back(std::make_unique<ds::BatchedHashMap>(sched));
    shards.push_back(maps.back().get());
  }
  ShardRouter::Options opt;
  opt.max_threads = kClients;
  // Depth can never exceed kClients in-flight submits, so nothing sheds:
  // the ledger should be all-ok and exactly mirror the domain counters.
  opt.domain.shed_threshold = kClients;
  ShardRouter router(sched, opt);
  const std::size_t group = router.add_group(shards);

  LoadGenConfig cfg;
  cfg.shape = sim::Shape::Zipfian;
  cfg.requests = kRequests;
  cfg.seed = 7;
  cfg.clients = kClients;
  cfg.rate = 200e3;
  cfg.deadline = std::chrono::seconds(10);  // generous: no timeouts wanted

  LoadGenStats stats;
  std::thread driver([&] {
    stats = service::run_open_loop(
        cfg, [&](unsigned client, const sim::OpDesc& op,
                 std::chrono::steady_clock::time_point deadline,
                 Xoshiro256& rng) {
          ds::BatchedHashMap::Op rec;
          rec.kind = op.update ? ds::BatchedHashMap::Kind::Update
                               : ds::BatchedHashMap::Kind::Get;
          rec.key = op.key;
          rec.value = 1;
          return service::submit_slo(router.domain_for(group, op.key), client,
                                     rec, deadline, cfg.retry, rng);
        });
    router.shutdown();
  });
  sched.run([&] { router.serve(); });
  driver.join();

  // Client-side ledger: nothing lost, nothing shed, nothing timed out.
  EXPECT_EQ(stats.requests(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.ok, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.latency.count(), static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(stats.latency.percentile_ns(0.5), 0u);

  // Domain-side mirror: the shards together served exactly the ledger.
  const ExternalStats total = router.total_stats();
  EXPECT_EQ(total.ops_succeeded, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(total.ops_served,
            total.ops_succeeded + total.ops_failed + total.ops_timed_out);
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    const ExternalStats st = router.stats(s);
    EXPECT_EQ(st.ops_served,
              st.ops_succeeded + st.ops_failed + st.ops_timed_out)
        << "shard " << s;
    EXPECT_GT(st.ops_served, 0u) << "shard " << s;
  }
}

}  // namespace
}  // namespace batcher
