// Tests for the plain work-stealing simulator: it must reproduce the
// T_P = O(T1/P + T∞) behaviour that BATCHER generalizes.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/dag.hpp"
#include "sim/sim_ws.hpp"

namespace batcher::sim {
namespace {

TEST(SimWS, SingleWorkerTakesExactlyT1Steps) {
  Dag dag = build_plain_fork_join(16, 10);
  const SimResult res = simulate_ws(dag, 1, /*seed=*/1);
  EXPECT_EQ(res.makespan, dag.work());
  EXPECT_EQ(res.busy_core, dag.work());
  EXPECT_EQ(res.steals_succeeded, 0);
}

TEST(SimWS, ChainIsInherentlySequential) {
  Dag dag;
  const Segment seg = build_chain(dag, 100);
  dag.root = seg.first;
  for (unsigned p : {1u, 2u, 8u}) {
    const SimResult res = simulate_ws(dag, p, 1);
    EXPECT_EQ(res.makespan, 100) << "P=" << p;
  }
}

TEST(SimWS, DeterministicGivenSeed) {
  Dag dag = build_plain_fork_join(64, 8);
  const SimResult a = simulate_ws(dag, 4, 42);
  const SimResult b = simulate_ws(dag, 4, 42);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
  const SimResult c = simulate_ws(dag, 4, 43);
  // Different seed may differ (not guaranteed, but steals differ).
  EXPECT_EQ(c.busy_core, a.busy_core);  // work is invariant
}

class SimWSSpeedup : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimWSSpeedup, MakespanWithinWorkStealingBound) {
  const unsigned P = GetParam();
  Dag dag = build_plain_fork_join(/*leaves=*/256, /*chain_len=*/16);
  const std::int64_t t1 = dag.work();
  const std::int64_t tinf = dag.span();
  const SimResult res = simulate_ws(dag, P, 7);
  // Lower bound: max(T1/P, T∞).
  EXPECT_GE(res.makespan, t1 / P);
  EXPECT_GE(res.makespan, tinf);
  // Upper bound with a generous constant: T1/P + 8·T∞.
  EXPECT_LE(res.makespan, t1 / P + 8 * tinf);
}

TEST_P(SimWSSpeedup, NearLinearSpeedupOnWideDags) {
  const unsigned P = GetParam();
  Dag dag = build_plain_fork_join(1024, 32);
  const SimResult res1 = simulate_ws(dag, 1, 3);
  const SimResult resP = simulate_ws(dag, P, 3);
  const double speedup = static_cast<double>(res1.makespan) /
                         static_cast<double>(resP.makespan);
  // At least 60% parallel efficiency on an embarrassingly parallel dag.
  EXPECT_GE(speedup, 0.6 * P) << "P=" << P;
}

INSTANTIATE_TEST_SUITE_P(Workers, SimWSSpeedup,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(SimWS, WorkConservation) {
  Dag dag = build_plain_fork_join(100, 7);
  const SimResult res = simulate_ws(dag, 4, 11);
  EXPECT_EQ(res.busy_core, dag.work());
}

}  // namespace
}  // namespace batcher::sim
