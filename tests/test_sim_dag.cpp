// Tests for the simulator's dag model and builders.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"

namespace batcher::sim {
namespace {

TEST(Dag, ChainHasLinearSpan) {
  Dag dag;
  const Segment seg = build_chain(dag, 10);
  dag.root = seg.first;
  EXPECT_TRUE(dag.validate());
  EXPECT_EQ(dag.work(), 10);
  EXPECT_EQ(dag.span(), 10);
}

TEST(Dag, ForkJoinWorkAndSpan) {
  // leaves * chain work plus 2(leaves-1) fork/join nodes; span = chain +
  // 2*depth.
  Dag dag = build_plain_fork_join(/*leaves=*/8, /*chain_len=*/5);
  EXPECT_TRUE(dag.validate());
  EXPECT_EQ(dag.work(), 8 * 5 + 2 * 7);
  EXPECT_EQ(dag.span(), 5 + 2 * 3);  // lg 8 = 3 levels of fork + join
}

TEST(Dag, SingleLeafForkJoinIsChain) {
  Dag dag = build_plain_fork_join(1, 7);
  EXPECT_EQ(dag.work(), 7);
  EXPECT_EQ(dag.span(), 7);
}

TEST(Dag, UnbalancedLeafCounts) {
  for (std::int64_t leaves : {2, 3, 5, 6, 7, 9, 100}) {
    Dag dag = build_plain_fork_join(leaves, 3);
    EXPECT_TRUE(dag.validate()) << leaves;
    EXPECT_EQ(dag.work(), leaves * 3 + 2 * (leaves - 1)) << leaves;
  }
}

TEST(Dag, ParallelLoopWithDsCountsNodes) {
  const std::int64_t n = 64;
  Dag dag = build_parallel_loop_with_ds(n, /*pre=*/2, /*post=*/1,
                                        /*ds_per_iter=*/1);
  EXPECT_TRUE(dag.validate());
  EXPECT_EQ(dag.num_ds_nodes(), n);
  EXPECT_EQ(dag.max_ds_on_path(), 1);
  // Work: n*(2+1+1 ds) + 2(n-1) fork/join.
  EXPECT_EQ(dag.work(), n * 4 + 2 * (n - 1));
  // Span: 2 lg n + leaf length.
  EXPECT_EQ(dag.span(), 2 * 6 + 4);
}

TEST(Dag, ParallelLoopMultipleDsPerIteration) {
  Dag dag = build_parallel_loop_with_ds(16, 1, 0, 3);
  EXPECT_EQ(dag.num_ds_nodes(), 48);
  EXPECT_EQ(dag.max_ds_on_path(), 3);
}

TEST(Dag, SequentialDsChainHasMEqualN) {
  Dag dag = build_sequential_ds_chain(/*n=*/20, /*gap=*/2);
  EXPECT_TRUE(dag.validate());
  EXPECT_EQ(dag.num_ds_nodes(), 20);
  EXPECT_EQ(dag.max_ds_on_path(), 20);
  EXPECT_EQ(dag.work(), 1 + 20 * 3);
  EXPECT_EQ(dag.span(), dag.work());  // a chain
}

TEST(Dag, BuildWithWorkSpanApproximatesRequest) {
  for (std::int64_t work : {10, 100, 1000, 10000}) {
    for (std::int64_t span : {5, 10, 50}) {
      if (span > work) continue;
      Dag dag;
      const Segment seg = build_with_work_span(dag, work, span);
      dag.root = seg.first;
      EXPECT_TRUE(dag.validate());
      // Within a factor of ~4 both ways (structural constants); the span
      // additionally pays the unavoidable 2·lg(leaves) binary-forking tax.
      std::int64_t lg_work = 0;
      while ((std::int64_t{1} << lg_work) < work) ++lg_work;
      EXPECT_GE(dag.work(), work / 4) << work << " " << span;
      EXPECT_LE(dag.work(), 4 * work) << work << " " << span;
      EXPECT_LE(dag.span(), 4 * span + 2 * lg_work + 4) << work << " " << span;
    }
  }
}

TEST(Dag, ValidateRejectsBrokenDags) {
  Dag dag;
  EXPECT_FALSE(dag.validate());  // no root
  const NodeId a = dag.add_node();
  const NodeId b = dag.add_node();
  dag.add_edge(a, b);
  dag.root = b;  // root with incoming edge
  EXPECT_FALSE(dag.validate());
  dag.root = a;
  EXPECT_TRUE(dag.validate());
}

TEST(CostModel, ILog2) {
  EXPECT_EQ(ilog2(1), 1);  // clamped to >= 1
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(CostModel, CounterLinearWorkLogSpan) {
  CounterCostModel m(2);
  const WorkSpan c = m.batch_cost(64);
  EXPECT_EQ(c.work, 128);
  EXPECT_EQ(c.span, 6 + 1);
}

TEST(CostModel, SkipListGrowsWithCommits) {
  SkipListCostModel m(/*initial_size=*/1024);
  const std::int64_t cost_before = m.batch_cost(8).work;
  for (int i = 0; i < 1000; ++i) m.on_commit(1024);  // grow 1000x
  const std::int64_t cost_after = m.batch_cost(8).work;
  EXPECT_GT(cost_after, cost_before);
  EXPECT_GT(m.sequential_op_cost(), 10);
}

TEST(CostModel, TreeCostsSuperlinearInBatch) {
  SearchTreeCostModel m(1 << 20);
  const WorkSpan small = m.batch_cost(2);
  const WorkSpan big = m.batch_cost(64);
  EXPECT_GT(big.work, 16 * small.work / 2);  // at least ~linear growth
  EXPECT_GE(big.span, small.span);
}

}  // namespace
}  // namespace batcher::sim
