// Tests for the batched priority queue (pairing heap with bulk meld).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "ds/batched_pq.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

using Key = BatchedPriorityQueue::Key;

TEST(BatchedPQ, UnsafeHeapOrder) {
  rt::Scheduler sched(1);
  BatchedPriorityQueue pq(sched);
  for (Key k : {5, 3, 8, 1, 9, 2}) pq.insert_unsafe(k);
  EXPECT_EQ(pq.size_unsafe(), 6u);
  EXPECT_TRUE(pq.check_invariants());
  std::vector<Key> out;
  while (auto v = pq.extract_min_unsafe()) out.push_back(*v);
  EXPECT_EQ(out, (std::vector<Key>{1, 2, 3, 5, 8, 9}));
  EXPECT_FALSE(pq.extract_min_unsafe().has_value());
}

TEST(BatchedPQ, PeekDoesNotRemove) {
  rt::Scheduler sched(1);
  BatchedPriorityQueue pq(sched);
  pq.insert_unsafe(4);
  EXPECT_EQ(*pq.peek_min_unsafe(), 4);
  EXPECT_EQ(pq.size_unsafe(), 1u);
}

TEST(BatchedPQ, DuplicateKeysAllSurvive) {
  rt::Scheduler sched(1);
  BatchedPriorityQueue pq(sched);
  for (int i = 0; i < 10; ++i) pq.insert_unsafe(7);
  EXPECT_EQ(pq.size_unsafe(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*pq.extract_min_unsafe(), 7);
}

class PQParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(PQParam, ParallelInsertsThenSequentialDrainSorted) {
  rt::Scheduler sched(GetParam());
  BatchedPriorityQueue pq(sched);
  constexpr std::int64_t kN = 3000;
  Xoshiro256 rng(41);
  std::vector<Key> keys(kN);
  for (auto& k : keys) k = static_cast<Key>(rng.next_below(1u << 20));
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      pq.insert(keys[static_cast<std::size_t>(i)]);
    });
  });
  EXPECT_EQ(pq.size_unsafe(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(pq.check_invariants());

  std::sort(keys.begin(), keys.end());
  for (std::int64_t i = 0; i < kN; ++i) {
    auto v = pq.extract_min_unsafe();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, keys[static_cast<std::size_t>(i)]) << "position " << i;
  }
}

TEST_P(PQParam, ParallelExtractMinsReturnDistinctSmallest) {
  rt::Scheduler sched(GetParam());
  BatchedPriorityQueue pq(sched);
  constexpr std::int64_t kN = 1000;
  for (Key k = 0; k < kN; ++k) pq.insert_unsafe(k);
  constexpr std::int64_t kPops = 300;
  std::vector<std::optional<Key>> popped(kPops);
  sched.run([&] {
    rt::parallel_for(0, kPops, [&](std::int64_t i) {
      popped[static_cast<std::size_t>(i)] = pq.extract_min();
    });
  });
  std::vector<Key> got;
  for (const auto& v : popped) {
    ASSERT_TRUE(v.has_value());
    got.push_back(*v);
  }
  std::sort(got.begin(), got.end());
  for (std::int64_t i = 0; i < kPops; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "pops must be the k smallest";
  }
  EXPECT_EQ(pq.size_unsafe(), static_cast<std::size_t>(kN - kPops));
}

TEST_P(PQParam, MixedInsertExtractConservesElements) {
  rt::Scheduler sched(GetParam());
  BatchedPriorityQueue pq(sched);
  for (Key k = 0; k < 500; ++k) pq.insert_unsafe(k * 10);
  constexpr std::int64_t kOps = 1000;
  std::atomic<std::int64_t> pops_ok{0};
  sched.run([&] {
    rt::parallel_for(0, kOps, [&](std::int64_t i) {
      if (i % 2 == 0) {
        pq.insert(i);
      } else {
        if (pq.extract_min().has_value()) pops_ok.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(pq.size_unsafe(),
            500u + kOps / 2 - static_cast<std::size_t>(pops_ok.load()));
  EXPECT_TRUE(pq.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, PQParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedPQ, BatchSemanticsInsertsBeforeExtracts) {
  // Within one batch, extract-mins observe the batch's inserts.
  rt::Scheduler sched(4);
  BatchedPriorityQueue pq(sched);
  pq.insert_unsafe(100);
  using Op = BatchedPriorityQueue::Op;
  Op ins, ext1, ext2;
  ins.kind = BatchedPriorityQueue::Kind::Insert;
  ins.key = 5;
  ext1.kind = ext2.kind = BatchedPriorityQueue::Kind::ExtractMin;
  OpRecordBase* ops[3] = {&ext1, &ins, &ext2};  // listing order irrelevant
  pq.run_batch(ops, 3);
  EXPECT_EQ(*ext1.out, 5);    // first extract takes the same-batch insert
  EXPECT_EQ(*ext2.out, 100);
  EXPECT_EQ(pq.size_unsafe(), 0u);
}

TEST(BatchedPQ, ExtractFromEmptyReturnsNothing) {
  rt::Scheduler sched(2);
  BatchedPriorityQueue pq(sched);
  sched.run([&] {
    EXPECT_FALSE(pq.extract_min().has_value());
    pq.insert(3);
    EXPECT_EQ(*pq.extract_min(), 3);
    EXPECT_FALSE(pq.extract_min().has_value());
  });
}

TEST(BatchedPQ, MatchesStdPriorityQueueOnRandomTrace) {
  rt::Scheduler sched(1);
  BatchedPriorityQueue pq(sched);
  std::priority_queue<Key, std::vector<Key>, std::greater<>> ref;
  Xoshiro256 rng(53);
  for (int step = 0; step < 5000; ++step) {
    if (ref.empty() || rng.next_below(3) != 0) {
      const Key k = static_cast<Key>(rng.next_below(10000));
      pq.insert_unsafe(k);
      ref.push(k);
    } else {
      auto got = pq.extract_min_unsafe();
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(*got, ref.top());
      ref.pop();
    }
  }
  EXPECT_EQ(pq.size_unsafe(), ref.size());
}

}  // namespace
}  // namespace batcher::ds
