// Tests for the adversarial scenario engine (src/sim/scenario.hpp).
//
// Four layers:
//   1. Replayability: a ScenarioGen is a pure function of its config — same
//      seed, same op tape, same arrival schedule, same dag, same simulated
//      makespan; different seeds diverge.
//   2. Shape statistics: each workload shape actually produces the regime it
//      names (zipfian skew concentrates keys, working-set locality repeats
//      recent keys, trapped-heavy deepens the ds chain, flash crowds arrive
//      in waves).
//   3. The keyed cost model: batch span collapses exactly when a batch is
//      dense on few keys, which is what makes skew adversarial at all.
//   4. Predicted pathologies: the simulator reproduces the regimes the sweep
//      (bench_sim_scenarios) reports — skew inflates BATCHER's makespan,
//      flash crowds erode its advantage over flat combining, and on uniform
//      traffic a crossover P exists on the sweep grid.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "sim/scenario.hpp"
#include "sim/sim_batcher.hpp"
#include "sim/sim_concurrent.hpp"
#include "sim/sim_flatcomb.hpp"

namespace batcher::sim {
namespace {

constexpr Shape kAllShapes[] = {Shape::Uniform, Shape::Zipfian,
                                Shape::FlashCrowd, Shape::TrappedHeavy,
                                Shape::WorkingSet};

std::int64_t batcher_makespan(const ScenarioGen& gen, const Dag& core,
                              unsigned workers) {
  auto model = gen.make_cost_model();
  BatcherSimConfig cfg;
  cfg.workers = workers;
  cfg.seed = gen.config().seed;
  return simulate_batcher(core, *model, cfg).makespan;
}

std::int64_t flatcomb_makespan(const ScenarioGen& gen, const Dag& core,
                               unsigned workers) {
  auto model = gen.make_cost_model();
  return simulate_flatcomb(core, *model, workers, gen.config().seed).makespan;
}

// --- 1. Replayability -------------------------------------------------------

TEST(ScenarioReplay, SameSeedReplaysTapeAndArrivalsExactly) {
  for (Shape shape : kAllShapes) {
    const ScenarioConfig cfg = make_scenario_config(shape, 1024, 7);
    const ScenarioGen a(cfg);
    const ScenarioGen b(cfg);
    EXPECT_EQ(a.tape(), b.tape()) << shape_name(shape);
    EXPECT_EQ(a.arrival_schedule(), b.arrival_schedule()) << shape_name(shape);
    EXPECT_EQ(a.leaves(), b.leaves()) << shape_name(shape);
    const Dag da = a.build_core_dag();
    const Dag db = b.build_core_dag();
    EXPECT_EQ(da.size(), db.size()) << shape_name(shape);
    EXPECT_EQ(da.span(), db.span()) << shape_name(shape);
  }
}

TEST(ScenarioReplay, DifferentSeedsDiverge) {
  for (Shape shape : kAllShapes) {
    const ScenarioGen a(make_scenario_config(shape, 1024, 7));
    const ScenarioGen b(make_scenario_config(shape, 1024, 8));
    EXPECT_NE(a.tape(), b.tape()) << shape_name(shape);
  }
}

TEST(ScenarioReplay, SimulatedMakespansAreDeterministic) {
  const ScenarioGen gen(make_scenario_config(Shape::Zipfian, 1024, 3));
  const Dag core = gen.build_core_dag();
  EXPECT_EQ(batcher_makespan(gen, core, 64), batcher_makespan(gen, core, 64));
  EXPECT_EQ(flatcomb_makespan(gen, core, 64), flatcomb_makespan(gen, core, 64));
  auto model = gen.make_cost_model();
  ConcurrentSimConfig cfg;
  cfg.workers = 64;
  cfg.seed = 3;
  cfg.base_cost = model->sequential_op_cost();
  EXPECT_EQ(simulate_concurrent(core, cfg).makespan,
            simulate_concurrent(core, cfg).makespan);
}

// --- 2. Shape statistics ----------------------------------------------------

TEST(ScenarioShape, TapeCoversEveryDsNodeExactlyOnce) {
  for (Shape shape : kAllShapes) {
    const ScenarioGen gen(make_scenario_config(shape, 1024, 5));
    const Dag core = gen.build_core_dag();
    EXPECT_TRUE(core.validate()) << shape_name(shape);
    EXPECT_EQ(core.num_ds_nodes(),
              static_cast<std::int64_t>(gen.tape().size()))
        << shape_name(shape);
    EXPECT_EQ(static_cast<std::int64_t>(gen.tape().size()), gen.config().ops)
        << shape_name(shape);
  }
}

TEST(ScenarioShape, ZipfianConcentratesKeys) {
  const ScenarioGen uniform(make_scenario_config(Shape::Uniform, 4096, 11));
  const ScenarioGen zipf(make_scenario_config(Shape::Zipfian, 4096, 11));
  // A theta=1.1 zipfian's hottest key absorbs a double-digit share of the
  // tape; uniform over 512 keys sits near 1/512.
  EXPECT_GT(zipf.top_key_fraction(), 5.0 * uniform.top_key_fraction());
  EXPECT_GT(zipf.top_key_fraction(), 0.05);
  EXPECT_LT(zipf.distinct_keys(), uniform.distinct_keys());
}

TEST(ScenarioShape, WorkingSetRepeatsRecentKeys) {
  const ScenarioGen uniform(make_scenario_config(Shape::Uniform, 4096, 11));
  const ScenarioGen ws(make_scenario_config(Shape::WorkingSet, 4096, 11));
  EXPECT_GT(ws.repeat_fraction(64), 0.6);
  EXPECT_LT(uniform.repeat_fraction(64), 0.3);
  // Locality without global skew: no single hot key dominates.
  EXPECT_LT(ws.top_key_fraction(), 0.2);
}

TEST(ScenarioShape, TrappedHeavyDeepensTheDsChain) {
  const ScenarioGen uniform(make_scenario_config(Shape::Uniform, 1024, 5));
  const ScenarioGen trapped(make_scenario_config(Shape::TrappedHeavy, 1024, 5));
  EXPECT_EQ(uniform.build_core_dag().max_ds_on_path(), 1);
  EXPECT_EQ(trapped.build_core_dag().max_ds_on_path(),
            trapped.config().ds_per_leaf);
  EXPECT_GT(trapped.config().ds_per_leaf, 1);
  for (const OpDesc& op : trapped.tape()) EXPECT_TRUE(op.update);
}

TEST(ScenarioShape, FlashCrowdArrivesInBurstWaves) {
  const ScenarioConfig cfg = make_scenario_config(Shape::FlashCrowd, 1024, 5);
  const ScenarioGen gen(cfg);
  const ArrivalProcess& arr = gen.arrivals();
  EXPECT_EQ(arr.waves(), (gen.leaves() + cfg.burst - 1) / cfg.burst);
  EXPECT_GT(arr.waves(), 1);
  EXPECT_EQ(arr.quiet_between(), cfg.quiet);
  for (std::int64_t leaf = 0; leaf < gen.leaves(); ++leaf) {
    EXPECT_EQ(arr.at(leaf).wave, leaf / cfg.burst) << "leaf " << leaf;
  }
  // Every other shape is open-loop: one wave, no quiet phases.
  const ScenarioGen u(make_scenario_config(Shape::Uniform, 1024, 5));
  EXPECT_EQ(u.arrivals().waves(), 1);
  EXPECT_EQ(u.arrivals().quiet_between(), 0);
  // The quiet phases show up as serial span: the flash-crowd dag's critical
  // path carries at least (waves-1) * quiet core nodes.
  EXPECT_GE(gen.build_core_dag().span(), (arr.waves() - 1) * cfg.quiet);
}

// --- 3. The keyed cost model ------------------------------------------------

TEST(KeyedCost, DistinctKeysKeepTheSpanLogarithmic) {
  std::vector<std::int64_t> keys(256);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::int64_t>(i);
  }
  KeyedCostModel model(keys, /*unit=*/1);
  const WorkSpan ws = model.batch_cost(256);
  // d = k = 256, c_max = 1: span = lg 256 + lg 256 + 1 = 17.
  EXPECT_EQ(ws.span, 17);
  EXPECT_EQ(ws.work, 256 + 256);
}

TEST(KeyedCost, RepeatedKeysCollapseTheSpan) {
  KeyedCostModel model(std::vector<std::int64_t>(256, 42), /*unit=*/1);
  const WorkSpan ws = model.batch_cost(256);
  // d = 1, c_max = 256: the per-key serial chain eats the whole batch.
  EXPECT_GE(ws.span, 256);
  EXPECT_EQ(ws.work, 256 + 1);
}

TEST(KeyedCost, CommitsConsumeTheTapeInOrder) {
  std::vector<std::int64_t> keys{1, 1, 1, 1, 9, 8, 7, 6};
  KeyedCostModel model(keys, /*unit=*/1);
  EXPECT_EQ(model.cursor(), 0u);
  // First half: one key four times -> serial span.
  const WorkSpan dense = model.batch_cost(4);
  model.on_commit(4);
  EXPECT_EQ(model.cursor(), 4u);
  // Second half: four distinct keys -> parallel span.
  const WorkSpan sparse = model.batch_cost(4);
  model.on_commit(4);
  EXPECT_EQ(model.cursor(), 0u);  // wrapped
  EXPECT_GT(dense.span, sparse.span);
  // batch_cost peeks without consuming: calling it twice is idempotent.
  const WorkSpan again = model.batch_cost(4);
  EXPECT_EQ(again.span, model.batch_cost(4).span);
}

// --- 4. Predicted pathologies ----------------------------------------------

// Skew-induced batch-density collapse: with many ops landing on one key, the
// keyed BOP span degenerates toward sequential, and BATCHER — whose advantage
// is parallel batch application — slows down relative to the same traffic
// spread uniformly.  (The runtime analogue is exercised by the perturbed
// property tapes in test_properties.cpp; the real batched structures combine
// same-key ops, which is the hardening this test motivates.)
TEST(ScenarioPathology, ZipfianSkewInflatesBatcherMakespan) {
  const ScenarioGen uniform(make_scenario_config(Shape::Uniform, 2048, 42));
  const ScenarioGen zipf(make_scenario_config(Shape::Zipfian, 2048, 42));
  const Dag du = uniform.build_core_dag();
  const Dag dz = zipf.build_core_dag();
  EXPECT_GT(batcher_makespan(zipf, dz, 256), batcher_makespan(uniform, du, 256));
  EXPECT_GT(batcher_makespan(zipf, dz, 1024),
            batcher_makespan(uniform, du, 1024));
}

// Flash crowds erode BATCHER's advantage: each burst fills only a fraction of
// P, so the Θ(P) batch-setup work amortizes over too few ops while the quiet
// phases serialize everything else.  At the same P where BATCHER beats flat
// combining on uniform traffic, it loses under flash crowds.  (The runtime
// analogue — bursty announce traffic at the chain limit — is the regression
// test in test_scenario_regression.cpp.)
TEST(ScenarioPathology, FlashCrowdsErodeBatcherAdvantage) {
  const ScenarioGen uniform(make_scenario_config(Shape::Uniform, 2048, 42));
  const ScenarioGen crowd(make_scenario_config(Shape::FlashCrowd, 2048, 42));
  const Dag du = uniform.build_core_dag();
  const Dag dc = crowd.build_core_dag();
  EXPECT_LT(batcher_makespan(uniform, du, 1024),
            flatcomb_makespan(uniform, du, 1024));
  EXPECT_GT(batcher_makespan(crowd, dc, 1024),
            flatcomb_makespan(crowd, dc, 1024));
}

// The sweep's crossover is real: at the small end of the grid flat combining
// wins (batch setup dominates), at the large end BATCHER wins (parallel BOP
// dominates), so a crossover P exists between them.
TEST(ScenarioCrossover, UniformCrossoverExistsOnTheSweepGrid) {
  const ScenarioGen gen(make_scenario_config(Shape::Uniform, 2048, 42));
  const Dag core = gen.build_core_dag();
  EXPECT_GT(batcher_makespan(gen, core, 16), flatcomb_makespan(gen, core, 16));
  EXPECT_LT(batcher_makespan(gen, core, 1024),
            flatcomb_makespan(gen, core, 1024));
}

}  // namespace
}  // namespace batcher::sim
