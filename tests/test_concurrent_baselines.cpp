// Tests for the concurrent/sequential baseline structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/counters.hpp"
#include "concurrent/global_lock.hpp"
#include "concurrent/lazy_skiplist.hpp"
#include "concurrent/seq_skiplist.hpp"
#include "support/rng.hpp"

namespace batcher::conc {
namespace {

TEST(SeqSkipList, InsertContainsErase) {
  SeqSkipList list;
  EXPECT_TRUE(list.insert(5));
  EXPECT_TRUE(list.insert(3));
  EXPECT_FALSE(list.insert(5));
  EXPECT_TRUE(list.contains(3));
  EXPECT_FALSE(list.contains(4));
  EXPECT_TRUE(list.erase(3));
  EXPECT_FALSE(list.erase(3));
  EXPECT_FALSE(list.contains(3));
  EXPECT_EQ(list.size(), 1u);
}

TEST(SeqSkipList, RandomTraceMatchesStdSet) {
  SeqSkipList list;
  std::set<std::int64_t> ref;
  Xoshiro256 rng(3);
  for (int step = 0; step < 20000; ++step) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_below(512));
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(list.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(list.contains(k), ref.count(k) > 0);
        break;
      default:
        ASSERT_EQ(list.erase(k), ref.erase(k) > 0);
        break;
    }
  }
  EXPECT_EQ(list.size(), ref.size());
}

TEST(AtomicCounter, SequentialSemantics) {
  AtomicCounter c(10);
  EXPECT_EQ(c.increment(5), 15);
  EXPECT_EQ(c.increment(-3), 12);
  EXPECT_EQ(c.read(), 12);
}

TEST(AtomicCounter, ParallelIncrementsAllLand) {
  AtomicCounter c;
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) c.increment(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.read(), kThreads * kPer);
}

TEST(AtomicCounter, ReturnsDistinctValues) {
  AtomicCounter c;
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  std::vector<std::vector<std::int64_t>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        results[static_cast<std::size_t>(t)].push_back(c.increment(1));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::int64_t> all;
  for (const auto& r : results) all.insert(r.begin(), r.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
}

TEST(MutexCounter, ParallelIncrementsAllLand) {
  MutexCounter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) c.increment(2);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.read(), 4 * 5000 * 2);
}

TEST(GlobalLock, WrapsSequentialStructureSafely) {
  GlobalLock<SeqSkipList> locked;
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        locked.with([&](SeqSkipList& l) { return l.insert(t * kPer + i); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(locked.unsafe().size(),
            static_cast<std::size_t>(kThreads * kPer));
}

TEST(LazySkipList, SequentialSemantics) {
  LazySkipList list;
  EXPECT_TRUE(list.insert(5));
  EXPECT_FALSE(list.insert(5));
  EXPECT_TRUE(list.contains(5));
  EXPECT_FALSE(list.contains(6));
  EXPECT_TRUE(list.erase(5));
  EXPECT_FALSE(list.erase(5));
  EXPECT_FALSE(list.contains(5));
}

TEST(LazySkipList, ConcurrentDistinctInserts) {
  LazySkipList list;
  constexpr int kThreads = 4;
  constexpr int kPer = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        ASSERT_TRUE(list.insert(t * kPer + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(list.size_approx(), static_cast<std::size_t>(kThreads * kPer));
  for (int k = 0; k < kThreads * kPer; ++k) ASSERT_TRUE(list.contains(k));
}

TEST(LazySkipList, ContendedIdenticalKeysOneWinner) {
  LazySkipList list;
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (list.insert(42)) winners.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_TRUE(list.contains(42));
}

TEST(LazySkipList, ConcurrentInsertEraseConservation) {
  LazySkipList list;
  for (std::int64_t k = 0; k < 2000; ++k) list.insert(k);
  constexpr int kThreads = 4;
  std::atomic<int> erased{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // All threads race to erase the same 2000 keys.
      for (std::int64_t k = 0; k < 2000; ++k) {
        if (list.erase(k)) erased.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(erased.load(), 2000) << "each key erased exactly once";
  EXPECT_EQ(list.size_approx(), 0u);
}

TEST(LazySkipList, MixedChurn) {
  LazySkipList list;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> net{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 4000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng.next_below(128));
        if (rng.next() & 1) {
          if (list.insert(k)) net.fetch_add(1);
        } else {
          if (list.erase(k)) net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(list.size_approx(), static_cast<std::size_t>(net.load()));
  // Structure still sane: every key either present or absent, queries work.
  for (std::int64_t k = 0; k < 128; ++k) list.contains(k);
}

}  // namespace
}  // namespace batcher::conc
