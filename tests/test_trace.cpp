// Tests for the always-on tracing layer (src/trace).
//
// Four layers:
//   1. TraceRing in isolation: wraparound keeps the newest records with an
//      exact dropped count, and a drain racing the writer never yields a torn
//      or out-of-order record (the seqlock re-check contract).
//   2. Disabled-path guarantees: with no session active, instrumentation
//      points record nothing and cost roughly one relaxed load (checked with
//      a deliberately generous ratio bound so the test never flakes on a
//      loaded CI host).
//   3. Session-level reconciliation on a live scheduler: the metrics derived
//      from a drained trace agree *exactly* with BatcherStats and with the
//      scheduler's destructor-final StatsSnapshot.
//   4. The same reconciliation under the audit perturber across >=1100
//      distinct seeded schedules (only with BATCHER_AUDIT hooks compiled in).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "audit/audit_session.hpp"
#include "audit/schedule_perturber.hpp"
#include "batcher/batcher.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "support/timing.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/trace_ring.hpp"

namespace batcher {
namespace {

namespace hooks = rt::hooks;
using audit::AuditSession;
using audit::SchedulePerturber;
using trace::EventId;
using trace::TraceRecord;
using trace::TraceRing;

#define REQUIRE_LIVE_HOOKS()                                               \
  do {                                                                     \
    if (!hooks::kEnabled) {                                                \
      GTEST_SKIP() << "BATCHER_AUDIT hooks not compiled into this build";  \
    }                                                                      \
  } while (0)

// --- 1. TraceRing in isolation ---------------------------------------------

void check_monotonic(const std::vector<TraceRecord>& records,
                     std::uint64_t floor_exclusive = 0) {
  std::uint64_t prev = floor_exclusive;
  for (const TraceRecord& r : records) {
    ASSERT_GT(r.ts_ns, prev) << "drained timestamps must be monotonic";
    prev = r.ts_ns;
  }
}

TEST(TraceRing, QuiescedDrainRoundTripsPayloads) {
  TraceRing ring;
  ring.init(64);
  ASSERT_EQ(ring.capacity(), 64u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push(EventId::kSteal, static_cast<std::uint16_t>(i),
              static_cast<std::uint32_t>(1000 + i), /*ts_ns=*/i + 1);
  }
  TraceRing::Drained d = ring.drain();
  EXPECT_EQ(d.dropped, 0u);
  ASSERT_EQ(d.records.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(d.records[i].ts_ns, i + 1);
    EXPECT_EQ(d.records[i].event, static_cast<std::uint16_t>(EventId::kSteal));
    EXPECT_EQ(d.records[i].a16, static_cast<std::uint16_t>(i));
    EXPECT_EQ(d.records[i].a32, static_cast<std::uint32_t>(1000 + i));
  }
  // Nothing left after a drain.
  TraceRing::Drained again = ring.drain();
  EXPECT_TRUE(again.records.empty());
  EXPECT_EQ(again.dropped, 0u);
}

TEST(TraceRing, OverflowingTwiceKeepsNewestWithExactDropCount) {
  // Satellite requirement: a writer that laps the ring more than twice must
  // still drain to monotonically-timestamped records plus an exact count of
  // what was overwritten.
  constexpr std::uint64_t kCapacity = 64;
  constexpr std::uint64_t kWritten = kCapacity * 2 + kCapacity / 2;  // 2.5 laps
  TraceRing ring;
  ring.init(kCapacity);
  for (std::uint64_t i = 0; i < kWritten; ++i) {
    ring.push(EventId::kTaskBegin, 0, static_cast<std::uint32_t>(i),
              /*ts_ns=*/i + 1);
  }
  TraceRing::Drained d = ring.drain();
  EXPECT_EQ(d.records.size(), kCapacity);
  EXPECT_EQ(d.dropped, kWritten - kCapacity);
  check_monotonic(d.records);
  // The survivors are exactly the newest kCapacity records.
  ASSERT_FALSE(d.records.empty());
  EXPECT_EQ(d.records.front().ts_ns, kWritten - kCapacity + 1);
  EXPECT_EQ(d.records.back().ts_ns, kWritten);
}

TEST(TraceRing, DrainWhileWritingStaysMonotonicAndAccountsEveryRecord) {
  // A reader drains repeatedly while the writer overflows the ring many
  // times.  Contract: every drained batch is timestamp-monotonic (and later
  // than everything drained before — no torn/stale record survives the
  // seqlock re-check), and kept + dropped accounts for every push.
  constexpr std::uint64_t kCapacity = 256;
  constexpr std::uint64_t kWritten = kCapacity * 40;
  TraceRing ring;
  ring.init(kCapacity);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kWritten; ++i) {
      ring.push(EventId::kTaskEnd, 0, 0, /*ts_ns=*/i + 1);
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t kept = 0, dropped = 0, last_ts = 0;
  const auto consume = [&] {
    TraceRing::Drained d = ring.drain();
    check_monotonic(d.records, last_ts);
    if (!d.records.empty()) last_ts = d.records.back().ts_ns;
    kept += d.records.size();
    dropped += d.dropped;
  };
  while (!done.load(std::memory_order_acquire)) consume();
  writer.join();
  consume();  // final drain after the writer quiesced

  EXPECT_EQ(kept + dropped, kWritten);
  EXPECT_EQ(last_ts, kWritten);  // the newest record always survives
  EXPECT_GT(kept, 0u);
}

// --- 2. Disabled-path guarantees -------------------------------------------

TEST(TraceDisabled, EmitsOutsideASessionRecordNothing) {
  ASSERT_FALSE(trace::enabled());
  for (int i = 0; i < 1000; ++i) {
    trace::emit(0, EventId::kTaskBegin);
    trace::emit(0, EventId::kOpSubmit, 7);
  }
  // A fresh session sees none of it: pre-session emits were dropped at the
  // enabled() check, and session start resets any ring this thread already
  // had from an earlier test.
  trace::TraceSession session;
  const trace::Trace& tr = session.stop();
  EXPECT_EQ(tr.total_records(), 0u);
  EXPECT_EQ(tr.dropped_records(), 0u);
  EXPECT_TRUE(tr.threads.empty());
}

TEST(TraceDisabled, EmitOverheadIsNearZero) {
  // The disabled instrumentation point is one relaxed load and a
  // predicted-not-taken branch.  Bound it against a trivial arithmetic loop
  // with a *very* generous ratio (and an absolute floor) so a loaded or
  // virtualized CI host cannot flake this test; a regression that would
  // matter (a lock, an allocation, a syscall) blows past 50x instantly.
  ASSERT_FALSE(trace::enabled());
  constexpr std::int64_t kIters = 4'000'000;
  volatile std::uint64_t sink = 0;

  Stopwatch base_sw;
  for (std::int64_t i = 0; i < kIters; ++i) sink = sink + 1;
  const double base_s = base_sw.elapsed_seconds();

  Stopwatch emit_sw;
  for (std::int64_t i = 0; i < kIters; ++i) {
    if (trace::enabled()) [[unlikely]] {
      trace::emit(0, EventId::kTaskBegin);
    }
    sink = sink + 1;
  }
  const double emit_s = emit_sw.elapsed_seconds();

  EXPECT_EQ(sink, static_cast<std::uint64_t>(2 * kIters));
  EXPECT_LT(emit_s, base_s * 50.0 + 0.05)
      << "disabled trace check cost " << emit_s << "s vs baseline " << base_s
      << "s over " << kIters << " iterations";
}

// --- 3. Session-level reconciliation ---------------------------------------

// Runs `ops` counter increments on a `workers`-wide scheduler inside an
// active trace session and returns everything needed for reconciliation.
// The StatsSnapshot is the destructor-final one, so every counter the trace
// saw has also landed in the snapshot (and vice versa) — no teardown race.
struct Reconciled {
  BatcherStats batcher;
  rt::StatsSnapshot sched;
  trace::MetricsReport metrics;
};

Reconciled run_traced_counter(unsigned workers, std::int64_t ops,
                              std::int64_t grain, std::size_t ring_capacity) {
  trace::TraceSession::Options opt;
  opt.ring_capacity = ring_capacity;
  trace::TraceSession session(opt);
  Reconciled out;
  {
    rt::Scheduler sched(workers);
    sched.export_final_stats(&out.sched);
    ds::BatchedCounter counter(sched);
    sched.run([&] {
      rt::parallel_for(0, ops, [&](std::int64_t) { counter.increment(1); },
                       grain);
    });
    EXPECT_EQ(counter.value_unsafe(), ops);
    out.batcher = counter.batcher().stats();
  }  // joins worker threads: all emissions and stat bumps are final
  out.metrics = trace::build_metrics(session.stop());
  return out;
}

// The identities a drained trace must satisfy against the domain's
// BatcherStats and the scheduler's final StatsSnapshot.
void expect_reconciles(const Reconciled& r) {
  const BatcherStats& st = r.batcher;
  const trace::MetricsReport& m = r.metrics;

  ASSERT_EQ(m.dropped_records, 0u) << "ring overflowed; grow ring_capacity";
  EXPECT_EQ(m.unmatched_edges, 0u);

  // Histogram totals vs BatcherStats.
  EXPECT_EQ(m.ops(), st.ops_processed);
  EXPECT_EQ(m.ops_submitted, st.ops_processed);
  EXPECT_EQ(m.batches, st.batches_launched);
  EXPECT_EQ(m.empty_batches, st.empty_batches);
  // A chained launch shares its predecessor's flag hold, so the flag-held
  // histogram records one entry per chain, not per launch.
  EXPECT_EQ(m.flag_held.count(), st.batches_launched - st.chained_launches);
  EXPECT_EQ(m.chained_launches, st.chained_launches);
  EXPECT_EQ(m.announce_pushes, st.announce_pushes);
  EXPECT_EQ(m.flag_cas_failures, st.flag_cas_failures);
  EXPECT_EQ(m.collect_phase.count(), st.batches_launched);
  EXPECT_EQ(m.run_phase.count(), st.batches_launched - st.empty_batches);
  EXPECT_EQ(m.complete_phase.count(), st.batches_launched - st.empty_batches);
  EXPECT_EQ(m.max_batch_size(), st.max_batch_size);

  // Batch-size distributions are bucket-for-bucket identical.
  const std::size_t buckets =
      std::max(m.batch_size_hist.size(), st.batch_size_histogram.size());
  for (std::size_t k = 0; k < buckets; ++k) {
    const std::uint64_t traced =
        k < m.batch_size_hist.size() ? m.batch_size_hist[k] : 0;
    const std::uint64_t counted =
        k < st.batch_size_histogram.size() ? st.batch_size_histogram[k] : 0;
    EXPECT_EQ(traced, counted) << "batch size " << k;
  }

  // Scheduler-side counts vs the destructor-final snapshot.
  EXPECT_EQ(m.tasks_core + m.tasks_batch, r.sched.tasks_executed);
  EXPECT_EQ(m.steal_attempts_core, r.sched.core_steal_attempts);
  EXPECT_EQ(m.steal_attempts_batch, r.sched.batch_steal_attempts);
  EXPECT_EQ(m.steals_won, r.sched.steals_succeeded);
}

TEST(TraceSessionLive, CounterWorkloadReconcilesExactly) {
  const Reconciled r = run_traced_counter(/*workers=*/4, /*ops=*/2048,
                                          /*grain=*/4,
                                          /*ring_capacity=*/1u << 18);
  expect_reconciles(r);
  EXPECT_EQ(r.batcher.ops_processed, 2048u);
  EXPECT_GT(r.metrics.batches, 0u);
  EXPECT_GT(r.metrics.total_records, 0u);
  EXPECT_GT(r.metrics.tasks_core, 0u);
  // The counter's BOP forks its writeback, so batch tasks appear exactly
  // when some batch collected >= 2 ops.
  if (r.metrics.max_batch_size() <= 1) {
    EXPECT_EQ(r.metrics.tasks_batch, 0u);
  }
}

TEST(TraceSessionLive, SingleWorkerHasSingletonBatchesOnly) {
  const Reconciled r = run_traced_counter(/*workers=*/1, /*ops=*/256,
                                          /*grain=*/1,
                                          /*ring_capacity=*/1u << 16);
  expect_reconciles(r);
  // Invariant 2 (batch size <= P) specializes to all-singleton batches.
  EXPECT_EQ(r.metrics.max_batch_size(), 1u);
}

TEST(TraceSessionLive, BackToBackSessionsStayIndependent) {
  const Reconciled a = run_traced_counter(2, 512, 2, 1u << 16);
  const Reconciled b = run_traced_counter(2, 512, 2, 1u << 16);
  expect_reconciles(a);
  expect_reconciles(b);
  // Second session only saw the second run (rings reset at session start,
  // dead rings pruned): same op volume, not accumulated.
  EXPECT_EQ(a.metrics.ops(), 512u);
  EXPECT_EQ(b.metrics.ops(), 512u);
}

// --- 4. Reconciliation under the audit perturber ---------------------------

TEST(TracePerturbedSweep, HistogramTotalsMatchStatsAcross1100Schedules) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 1100;

  // Same light perturbation as the audit sweep: enough to force distinct
  // interleavings per seed while keeping 1100 schedules fast.
  SchedulePerturber::Options opts;
  opts.yield_one_in = 96;
  opts.pause_one_in = 8;
  opts.max_pause_spins = 32;
  AuditSession audit(kWorkers, 0, opts);
  audit.install();

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    audit.reseed(seed);
    trace::TraceSession::Options topt;
    topt.ring_capacity = 1u << 16;
    trace::TraceSession session(topt);
    Reconciled r;
    {
      rt::Scheduler sched(kWorkers);
      sched.export_final_stats(&r.sched);
      ds::BatchedCounter counter(sched);
      if (seed % 2 == 0) {
        sched.run([&] {
          rt::parallel_for(0, 48, [&](std::int64_t) { counter.increment(1); },
                           /*grain=*/1);
        });
      } else {
        sched.run([&] {
          rt::parallel_for(0, 8, [&](std::int64_t) {
            rt::parallel_for(0, 6,
                             [&](std::int64_t) { counter.increment(1); },
                             /*grain=*/1);
          },
                           /*grain=*/1);
        });
      }
      ASSERT_EQ(counter.value_unsafe(), 48);
      r.batcher = counter.batcher().stats();
    }
    r.metrics = trace::build_metrics(session.stop());

    ASSERT_EQ(r.batcher.ops_processed, 48u) << "seed " << seed;
    ASSERT_NO_FATAL_FAILURE(expect_reconciles(r)) << "seed " << seed;
    if (::testing::Test::HasFailure()) {
      FAIL() << "reconciliation failed at seed " << seed
             << " (replay with this seed)";
    }
  }
  audit.uninstall();
}

}  // namespace
}  // namespace batcher
