// Unit tests for the support layer: RNG, arena, padding, timing.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "support/arena.hpp"
#include "support/backoff.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

namespace batcher {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
  // Successive outputs differ.
  EXPECT_NE(a.next(), a.next());
}

TEST(Xoshiro256, DeterministicStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SeedsDecorrelate) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, NextBelowInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextBelowRoughlyUniform) {
  Xoshiro256 rng(5);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.1) << "bucket " << b;
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Padded, OccupiesWholeCacheLines) {
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLineSize, 0u);
  EXPECT_EQ(alignof(Padded<int>), kCacheLineSize);
  Padded<int> array[4];
  for (int i = 0; i < 4; ++i) *array[i] = i;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*array[i], i);
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  std::vector<char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    char* p = static_cast<char*>(arena.allocate(24));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    for (char* q : ptrs) {
      // 24 rounds to 32; regions must not overlap.
      EXPECT_TRUE(p + 32 <= q || q + 32 <= p);
    }
    ptrs.push_back(p);
  }
}

TEST(Arena, HandlesOversizedAllocations) {
  Arena arena(64);
  void* big = arena.allocate(10000);
  EXPECT_NE(big, nullptr);
  void* small = arena.allocate(8);
  EXPECT_NE(small, nullptr);
}

TEST(Arena, CreateConstructsObjects) {
  struct Pod {
    int a;
    double b;
  };
  Arena arena;
  Pod* p = arena.create<Pod>(3, 2.5);
  EXPECT_EQ(p->a, 3);
  EXPECT_DOUBLE_EQ(p->b, 2.5);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a;
  int* p = a.create<int>(41);
  Arena b = std::move(a);
  EXPECT_EQ(*p, 41);  // still valid, owned by b now
  Arena c;
  c = std::move(b);
  EXPECT_EQ(*p, 41);
}

TEST(Stopwatch, MonotonicNonNegative) {
  Stopwatch sw;
  const double t0 = sw.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(sw.elapsed_seconds(), t0);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

TEST(Backoff, PauseAndResetDoNotHang) {
  Backoff b;
  for (int i = 0; i < 20; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace batcher
