// Tests for the amortized table-doubling LIFO stack (paper §3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "ds/batched_stack.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace batcher::ds {
namespace {

TEST(BatchedStack, SequentialPushPopIsLifo) {
  rt::Scheduler sched(2);
  BatchedStack<int> stack(sched);
  sched.run([&] {
    for (int i = 0; i < 100; ++i) stack.push(i);
    for (int i = 99; i >= 0; --i) {
      auto v = stack.pop();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, i);
    }
    EXPECT_FALSE(stack.pop().has_value());
  });
  EXPECT_EQ(stack.size_unsafe(), 0u);
}

TEST(BatchedStack, UnderflowReturnsEmpty) {
  rt::Scheduler sched(2);
  BatchedStack<int> stack(sched);
  sched.run([&] {
    EXPECT_FALSE(stack.pop().has_value());
    stack.push(7);
    EXPECT_EQ(*stack.pop(), 7);
    EXPECT_FALSE(stack.pop().has_value());
  });
}

TEST(BatchedStack, TableDoublesAndShrinks) {
  rt::Scheduler sched(1);
  BatchedStack<int> stack(sched);
  const std::size_t cap0 = stack.capacity_unsafe();
  sched.run([&] {
    for (int i = 0; i < 1000; ++i) stack.push(i);
  });
  EXPECT_GE(stack.capacity_unsafe(), 1000u);
  EXPECT_GT(stack.capacity_unsafe(), cap0);
  sched.run([&] {
    for (int i = 0; i < 1000; ++i) stack.pop();
  });
  EXPECT_LT(stack.capacity_unsafe(), 1000u);  // shrank back down
  EXPECT_EQ(stack.size_unsafe(), 0u);
}

TEST(BatchedStack, ParallelPushesAllSurvive) {
  rt::Scheduler sched(4);
  BatchedStack<std::int64_t> stack(sched);
  constexpr std::int64_t kN = 5000;
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) { stack.push(i); });
  });
  EXPECT_EQ(stack.size_unsafe(), static_cast<std::size_t>(kN));
  // Drain and verify the multiset of values.
  std::set<std::int64_t> seen;
  sched.run([&] {
    for (std::int64_t i = 0; i < kN; ++i) {
      auto v = stack.pop();
      ASSERT_TRUE(v.has_value());
      seen.insert(*v);
    }
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kN));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), kN - 1);
}

TEST(BatchedStack, ParallelMixedPushPopConservesElements) {
  rt::Scheduler sched(8);
  BatchedStack<std::int64_t> stack(sched);
  constexpr std::int64_t kN = 4000;  // pairs of push(i), pop()
  std::vector<std::optional<std::int64_t>> popped(kN);
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      if (i % 2 == 0) {
        stack.push(i);
      } else {
        popped[static_cast<std::size_t>(i)] = stack.pop();
      }
    });
  });
  // pushes - successful pops == final size.
  std::int64_t ok_pops = 0;
  std::set<std::int64_t> seen;
  for (const auto& v : popped) {
    if (v.has_value()) {
      ++ok_pops;
      EXPECT_TRUE(seen.insert(*v).second) << "value popped twice: " << *v;
      EXPECT_EQ(*v % 2, 0) << "popped a value never pushed";
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(stack.size_unsafe()), kN / 2 - ok_pops);
}

TEST(BatchedStack, BatchSemanticsPushesBeforePops) {
  // Drive BOP directly: a batch with pushes and pops applies the PUSH phase
  // first (paper §3), so a pop in the same batch can see a same-batch push.
  rt::Scheduler sched(4);
  BatchedStack<int> stack(sched);
  using Op = BatchedStack<int>::Op;
  Op push_op;
  push_op.kind = BatchedStack<int>::Kind::Push;
  push_op.value = 42;
  Op pop_op;
  pop_op.kind = BatchedStack<int>::Kind::Pop;
  OpRecordBase* ops[2] = {&pop_op, &push_op};  // pop listed first on purpose
  stack.run_batch(ops, 2);
  ASSERT_TRUE(pop_op.out.has_value());
  EXPECT_EQ(*pop_op.out, 42);
  EXPECT_EQ(stack.size_unsafe(), 0u);
}

TEST(BatchedStack, BatchPopsTakeDistinctTopElements) {
  rt::Scheduler sched(4);
  BatchedStack<int> stack(sched);
  using Op = BatchedStack<int>::Op;
  // Preload 1..5.
  {
    std::vector<Op> pushes(5);
    std::vector<OpRecordBase*> ptrs;
    for (int i = 0; i < 5; ++i) {
      pushes[static_cast<std::size_t>(i)].kind = BatchedStack<int>::Kind::Push;
      pushes[static_cast<std::size_t>(i)].value = i + 1;
      ptrs.push_back(&pushes[static_cast<std::size_t>(i)]);
    }
    stack.run_batch(ptrs.data(), ptrs.size());
  }
  // One batch of 3 pops: they take 5, 4, 3 in working-set order.
  std::vector<Op> pops(3);
  std::vector<OpRecordBase*> ptrs;
  for (auto& p : pops) {
    p.kind = BatchedStack<int>::Kind::Pop;
    ptrs.push_back(&p);
  }
  stack.run_batch(ptrs.data(), ptrs.size());
  EXPECT_EQ(*pops[0].out, 5);
  EXPECT_EQ(*pops[1].out, 4);
  EXPECT_EQ(*pops[2].out, 3);
  EXPECT_EQ(stack.size_unsafe(), 2u);
}

TEST(BatchedStack, MoveOnlyFriendlyValueType) {
  // std::string exercises non-trivial copies/moves in the table rebuild.
  rt::Scheduler sched(2);
  BatchedStack<std::string> stack(sched);
  sched.run([&] {
    for (int i = 0; i < 200; ++i) stack.push("value-" + std::to_string(i));
    for (int i = 199; i >= 0; --i) {
      auto v = stack.pop();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, "value-" + std::to_string(i));
    }
  });
}

}  // namespace
}  // namespace batcher::ds
