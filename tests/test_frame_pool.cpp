// Tests for the per-worker task-frame pool (runtime/frame_pool.hpp).
//
// This TU replaces the global operator new/delete with counting versions, so
// the headline property — steady-state spawn/join performs *zero* global
// allocations — is asserted directly rather than inferred from counters.
// The replacement is process-wide but this binary is the only user; the
// counted paths forward to malloc/free, which ASan/TSan still intercept.
//
// Coverage:
//   * zero global allocations in a warmed-up single-worker storm (exact);
//   * multi-worker storms: global allocations bounded by slab refills;
//   * the MPSC remote-free stack under concurrent pushers (TSan target),
//     including frame recycling — the second allocation wave reuses the
//     remotely-freed frames rather than carving new slabs;
//   * global-allocator fallbacks: oversized and over-aligned closures;
//   * allocate/free balance across whole scheduler lifetimes, with and
//     without injected faults (frames that die via fail_and_release);
//   * trace/metrics reconciliation for the pool's slab-refill events;
//   * retired deque buffers reclaimed at the run-boundary quiescent point.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace {

std::atomic<std::uint64_t> g_new_calls{0};
std::atomic<std::uint64_t> g_delete_calls{0};

void* counted_new(std::size_t bytes) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(bytes != 0 ? bytes : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_new_aligned(std::size_t bytes, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(al);
  const std::size_t size = (bytes + align - 1) / align * align;
  void* p = std::aligned_alloc(align, size != 0 ? size : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_delete(void* p) noexcept {
  g_delete_calls.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) { return counted_new(n); }
void* operator new[](std::size_t n) { return counted_new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_new_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_new_aligned(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_new(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_new(n);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { counted_delete(p); }
void operator delete[](void* p) noexcept { counted_delete(p); }
void operator delete(void* p, std::size_t) noexcept { counted_delete(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_delete(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_delete(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_delete(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_delete(p);
}

namespace batcher::rt {
namespace {

// Relaxed-store sink so the storm body is not optimized to nothing.
std::atomic<std::int64_t> g_sink{0};

// One fork/join storm: kTasks frames, grain 1, ~log2(kTasks) recursion depth
// so the deques never outgrow their initial capacity (no growth allocations
// polluting the zero-alloc window).
void spawn_storm(std::int64_t tasks) {
  parallel_for(
      0, tasks,
      [](std::int64_t i) { g_sink.store(i, std::memory_order_relaxed); },
      /*grain=*/1);
}

// --- Steady state: the allocator-free hot path ------------------------------

TEST(FramePoolSteadyState, SingleWorkerStormMakesZeroGlobalAllocations) {
  Scheduler sched(1);
  sched.run([] { spawn_storm(4096); });  // warm-up: carve the slabs

  std::uint64_t news = 0, deletes = 0;
  sched.run([&] {
    const std::uint64_t n0 = g_new_calls.load(std::memory_order_relaxed);
    const std::uint64_t d0 = g_delete_calls.load(std::memory_order_relaxed);
    spawn_storm(4096);
    spawn_storm(4096);
    news = g_new_calls.load(std::memory_order_relaxed) - n0;
    deletes = g_delete_calls.load(std::memory_order_relaxed) - d0;
  });
  EXPECT_EQ(news, 0u) << "steady-state spawn/join touched the global allocator";
  EXPECT_EQ(deletes, 0u);
}

TEST(FramePoolSteadyState, MultiWorkerGlobalAllocationsAreBoundedByRefills) {
  Scheduler sched(4);
  sched.run([] { spawn_storm(4096); });  // warm-up

  std::uint64_t news = 0, refills = 0;
  sched.run([&] {
    const std::uint64_t n0 = g_new_calls.load(std::memory_order_relaxed);
    const std::uint64_t r0 = sched.total_stats().slab_refills;
    for (int s = 0; s < 4; ++s) spawn_storm(4096);
    news = g_new_calls.load(std::memory_order_relaxed) - n0;
    refills = sched.total_stats().slab_refills - r0;
  });
  // Each refill is one slab allocation plus at most one slabs_-vector growth;
  // the +8 absorbs the refill counter racing the second read.
  EXPECT_LE(news, 2 * refills + 8);
}

// --- The MPSC remote-free stack ---------------------------------------------

TEST(FramePoolRemoteFree, ConcurrentRemoteFreesAllRecycle) {
  WorkerStats stats;
  FramePool pool(&stats, /*owner_id=*/0);
  constexpr int kFrames = 4096;
  constexpr int kThreads = 4;

  FramePool::set_tls(&pool);
  std::vector<void*> frames;
  frames.reserve(kFrames);
  for (int i = 0; i < kFrames; ++i) {
    frames.push_back(FramePool::allocate_frame(48, alignof(std::max_align_t)));
  }
  FramePool::set_tls(nullptr);
  // Fast-path counts are batched owner-side; publish before asserting.
  pool.flush_stats();
  const std::uint64_t slabs_carved = stats.slab_refills.get();
  ASSERT_EQ(stats.frames_allocated.get(), static_cast<std::uint64_t>(kFrames));

  // Non-owner threads hammer the Treiber stack with disjoint slices.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&frames, t] {
      for (int i = t; i < kFrames; i += kThreads) {
        FramePool::release_frame(frames[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.remote_frees.get(), static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.frames_freed.get(), static_cast<std::uint64_t>(kFrames));
  EXPECT_TRUE(pool.has_remote_frees());

  // The owner re-allocates the same count: every frame must come back from
  // the remote stack (distinct addresses, all previously seen, zero refills).
  FramePool::set_tls(&pool);
  std::set<void*> seen(frames.begin(), frames.end());
  std::set<void*> second_wave;
  for (int i = 0; i < kFrames; ++i) {
    void* p = FramePool::allocate_frame(48, alignof(std::max_align_t));
    EXPECT_TRUE(seen.count(p) == 1) << "allocation bypassed the free lists";
    second_wave.insert(p);
  }
  EXPECT_EQ(second_wave.size(), static_cast<std::size_t>(kFrames));
  EXPECT_EQ(stats.slab_refills.get(), slabs_carved);
  for (void* p : second_wave) FramePool::release_frame(p);
  FramePool::set_tls(nullptr);
}

TEST(FramePoolRemoteFree, StolenFramesBalanceAcrossSchedulerLifetime) {
  StatsSnapshot final_stats;
  {
    Scheduler sched(4);
    sched.export_final_stats(&final_stats);
    // Keep running storms until at least one steal happened (one-core CI
    // hosts can serialize early runs), then a few more for volume.
    for (int r = 0; r < 200; ++r) {
      sched.run([] { spawn_storm(2048); });
      if (sched.total_stats().steals_succeeded > 4 && r >= 8) break;
    }
  }
  EXPECT_GT(final_stats.frames_allocated, 0u);
  EXPECT_EQ(final_stats.frames_allocated, final_stats.frames_freed)
      << "some task frame leaked or double-freed";
  // Every stolen pool frame is finished by a non-owner, i.e. a remote free.
  EXPECT_GE(final_stats.remote_frees, final_stats.steals_succeeded);
}

// --- Global-allocator fallbacks ---------------------------------------------

TEST(FramePoolFallback, OversizedClosuresUseGlobalPathAndBalance) {
  StatsSnapshot final_stats;
  {
    Scheduler sched(2);
    sched.export_final_stats(&final_stats);
    std::array<char, 4096> big{};  // frame > 1 KiB class ceiling
    big[17] = 3;
    std::atomic<int> sum{0};
    sched.run([&] {
      for (int i = 0; i < 64; ++i) {
        parallel_invoke([&] { sum.fetch_add(1); },
                        [big, &sum] { sum.fetch_add(big[17]); });
      }
    });
    EXPECT_EQ(sum.load(), 64 * 4);
  }
  EXPECT_EQ(final_stats.frames_allocated, final_stats.frames_freed);
}

TEST(FramePoolFallback, OverAlignedClosuresRoundTrip) {
  struct alignas(2 * alignof(std::max_align_t)) OverAligned {
    char data[64] = {};
  };
  Scheduler sched(2);
  std::atomic<int> hits{0};
  OverAligned payload;
  payload.data[0] = 1;
  sched.run([&] {
    for (int i = 0; i < 32; ++i) {
      parallel_invoke([&] { hits.fetch_add(1); },
                      [payload, &hits] { hits.fetch_add(payload.data[0]); });
    }
  });
  EXPECT_EQ(hits.load(), 64);
}

TEST(FramePoolFallback, ExternalThreadSpawnsFallBackToGlobalNew) {
  // make_task from a thread with no pool (like the run() caller making the
  // root) must take the global path and release cleanly from a worker.
  Scheduler sched(1);
  std::atomic<int> ran{0};
  sched.run([&] { ran.fetch_add(1); });  // root frame is exactly this case
  EXPECT_EQ(ran.load(), 1);
}

// --- Failure path: fail_and_release returns frames exactly once -------------

#if BATCHER_AUDIT
TEST(FramePoolFault, InjectedTaskDeathsKeepPoolBalanced) {
  StatsSnapshot final_stats;
  {
    Scheduler sched(2);
    sched.export_final_stats(&final_stats);
    for (int r = 0; r < 24; ++r) {
      hooks::test_faults().throw_in_core_task.store(
          97, std::memory_order_relaxed);
      try {
        sched.run([] { spawn_storm(512); });
      } catch (const hooks::InjectedFault&) {
        // expected: the killed frame's error surfaces at the root join
      }
      hooks::test_faults().reset();
    }
  }
  EXPECT_GT(final_stats.frames_allocated, 0u);
  EXPECT_EQ(final_stats.frames_allocated, final_stats.frames_freed)
      << "a frame that died via fail_and_release missed the pool (or hit it "
         "twice)";
}
#endif  // BATCHER_AUDIT

// --- Trace integration ------------------------------------------------------

TEST(FramePoolTrace, SlabRefillEventsReconcileWithStats) {
  StatsSnapshot final_stats;
  trace::MetricsReport metrics;
  {
    Scheduler sched(2);
    sched.export_final_stats(&final_stats);
    trace::TraceSession session;
    sched.run([] { spawn_storm(8192); });
    metrics = trace::build_metrics(session.stop());
  }
  ASSERT_EQ(metrics.dropped_records, 0u);
  EXPECT_EQ(metrics.frame_slab_refills, final_stats.slab_refills);
  EXPECT_LE(metrics.frame_remote_frees, final_stats.remote_frees);
}

// --- Run-boundary reclamation of retired deque buffers ----------------------

void deep_spawn(int depth) {
  if (depth == 0) return;
  parallel_invoke([&] { deep_spawn(depth - 1); }, [] {});
}

TEST(FramePoolDequeReclaim, RetiredBuffersFreedAtNextRunBoundary) {
  Scheduler sched(1);
  // Each level pushes one frame without popping, so depth 200 overflows the
  // initial capacity of 64 and forces grow() to retire buffers.
  sched.run([] { deep_spawn(200); });
  EXPECT_GT(sched.worker(0).deque(TaskKind::Core).retired_count(), 0u);

  // The next run() reclaims at its all-parked quiescent point.
  sched.run([] {});
  EXPECT_EQ(sched.worker(0).deque(TaskKind::Core).retired_count(), 0u);
  EXPECT_EQ(sched.worker(0).deque(TaskKind::Batch).retired_count(), 0u);
}

}  // namespace
}  // namespace batcher::rt
