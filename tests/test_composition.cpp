// Multi-domain composition stress: several Batcher domains live on one
// scheduler, their operations interleaved strand-by-strand.
//
// The protocol's per-domain state (batch flag, pending array, statuses) must
// stay independent: a worker trapped on the skip list still steals batch work
// for the hash map, a launch on one domain must never observe or perturb
// another domain's flag, and Invariant 1 (at most one active batch) holds
// *per domain*, which the InvariantAuditor checks by keying its model on the
// domain pointer.  This is the correctness floor for any future cross-domain
// atomic layer (ROADMAP), and none of the existing suites exercised more
// than one real data structure per scheduler.
//
// Two layers:
//   1. A tier-1 storm: skiplist + hashmap + pq interleaved at full size on a
//      plain scheduler, final states verified against sequentially-derived
//      models plus each structure's own check_invariants().
//   2. A >=500-seed perturbed sweep (BATCHER_AUDIT builds): the same
//      interleaving, smaller per seed, under the schedule perturber with the
//      auditor asserting per-domain Invariant 1 on every seed.
//
// Selectable via `ctest -R composition`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "audit/audit_session.hpp"
#include "audit/schedule_perturber.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_pq.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

namespace hooks = rt::hooks;
using audit::AuditSession;
using audit::SchedulePerturber;

#define REQUIRE_LIVE_HOOKS()                                               \
  do {                                                                     \
    if (!hooks::kEnabled) {                                                \
      GTEST_SKIP() << "BATCHER_AUDIT hooks not compiled into this build";  \
    }                                                                      \
  } while (0)

// Pure per-strand key: the runtime interleaving cannot change it, so the
// sequential model below sees exactly the same keys.
std::int64_t strand_key(std::uint64_t seed, std::int64_t strand) {
  SplitMix64 sm(seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(strand));
  return static_cast<std::int64_t>(sm.next() % 256);
}

// One interleaved composition run: `strands` parallel strands, each touching
// all three domains (insert + read-back on skiplist and hashmap, insert and
// sometimes extract on the pq).  Returns the extracted pq keys (one slot per
// extracting strand, nullopt when the pq was momentarily empty).
struct CompositionResult {
  std::vector<std::optional<std::int64_t>> extracted;
  std::size_t skiplist_size = 0;
  std::size_t hashmap_size = 0;
  std::size_t pq_size = 0;
  std::vector<std::int64_t> pq_drained;  // what remained, drained in order
  bool skiplist_ok = false;
  bool hashmap_ok = false;
  bool pq_ok = false;
  std::int64_t hashmap_total = 0;  // sum over keys of stored counts
};

CompositionResult run_composition(unsigned workers, std::uint64_t seed,
                                  std::int64_t strands) {
  CompositionResult out;
  out.extracted.assign(static_cast<std::size_t>(strands), std::nullopt);
  rt::Scheduler sched(workers);
  ds::BatchedSkipList skiplist(sched);
  ds::BatchedHashMap hashmap(sched);
  ds::BatchedPriorityQueue pq(sched);
  sched.run([&] {
    rt::parallel_for(
        0, strands,
        [&](std::int64_t i) {
          const std::int64_t k = strand_key(seed, i);
          skiplist.insert(k);
          // Sequential within the strand: the insert committed, so the
          // read-back through a later batch must see it (Invariant 1 keeps
          // batches per domain totally ordered).
          EXPECT_TRUE(skiplist.contains(k)) << "strand " << i;
          const std::int64_t count = hashmap.update_add(k, 1);
          EXPECT_GE(count, 1) << "strand " << i;
          pq.insert(k);
          if (i % 4 == 0) {
            out.extracted[static_cast<std::size_t>(i)] = pq.extract_min();
          }
        },
        /*grain=*/1);
  });
  out.skiplist_size = skiplist.size_unsafe();
  out.hashmap_size = hashmap.size_unsafe();
  out.pq_size = pq.size_unsafe();
  out.skiplist_ok = skiplist.check_invariants();
  out.hashmap_ok = hashmap.check_invariants();
  out.pq_ok = pq.check_invariants();
  for (std::int64_t k = 0; k < 256; ++k) {
    if (auto v = hashmap.get_unsafe(k)) out.hashmap_total += *v;
  }
  while (auto v = pq.extract_min_unsafe()) out.pq_drained.push_back(*v);
  return out;
}

// Verifies a run against the sequentially-derived model of the same strands.
void expect_composed_state(const CompositionResult& r, std::uint64_t seed,
                           std::int64_t strands) {
  EXPECT_TRUE(r.skiplist_ok);
  EXPECT_TRUE(r.hashmap_ok);
  EXPECT_TRUE(r.pq_ok);

  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < strands; ++i) {
    keys.push_back(strand_key(seed, i));
  }
  std::vector<std::int64_t> distinct = keys;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  // Skip list: set semantics — exactly the distinct strand keys.
  EXPECT_EQ(r.skiplist_size, distinct.size());
  // Hash map: one count per strand, spread over the distinct keys.
  EXPECT_EQ(r.hashmap_size, distinct.size());
  EXPECT_EQ(r.hashmap_total, strands);

  // Priority queue: extracted ∪ remaining == all inserted keys, as multisets.
  std::vector<std::int64_t> returned = r.pq_drained;
  std::size_t hits = 0;
  for (const auto& v : r.extracted) {
    if (v.has_value()) {
      returned.push_back(*v);
      ++hits;
    }
  }
  EXPECT_EQ(r.pq_size + hits, keys.size());
  std::sort(returned.begin(), returned.end());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(returned, keys);
  // The drain is a heap-order walk: ascending.
  EXPECT_TRUE(std::is_sorted(r.pq_drained.begin(), r.pq_drained.end()));
}

// --- 1. Tier-1 storm --------------------------------------------------------

TEST(Composition, ThreeDomainStormKeepsEveryStructureConsistent) {
  const std::uint64_t seed = 2026;
  const std::int64_t strands = 512;
  const CompositionResult r = run_composition(/*workers=*/4, seed, strands);
  expect_composed_state(r, seed, strands);
}

TEST(Composition, SingleWorkerStormMatchesTheSameModel) {
  // P = 1 degenerates every batch to a singleton; the cross-domain
  // bookkeeping must still hold.
  const std::uint64_t seed = 7;
  const std::int64_t strands = 128;
  const CompositionResult r = run_composition(/*workers=*/1, seed, strands);
  expect_composed_state(r, seed, strands);
}

// --- 2. Perturbed sweep with per-domain audit -------------------------------

TEST(CompositionSweep, InvariantOneHoldsPerDomainAcross520Schedules) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 520;
  constexpr std::int64_t kStrands = 24;

  // The light perturbation the audit sweep uses: distinct interleavings per
  // seed while keeping 520 schedules fast on the 1-core container.
  SchedulePerturber::Options opts;
  opts.yield_one_in = 96;
  opts.pause_one_in = 8;
  opts.max_pause_spins = 32;
  AuditSession session(kWorkers, 0, opts);
  session.install();

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    session.reseed(seed);
    const CompositionResult r = run_composition(kWorkers, seed, kStrands);
    ASSERT_NO_FATAL_FAILURE(expect_composed_state(r, seed, kStrands))
        << "seed " << seed;
    // The auditor models each domain independently (keyed on the Batcher
    // address); a clean verdict here is per-domain Invariant 1/2/3 across
    // all three structures in this schedule.
    ASSERT_TRUE(session.auditor().clean())
        << "seed " << seed << "\n" << session.auditor().report();
    ASSERT_FALSE(session.watchdog().stalled())
        << "seed " << seed << "\n" << session.watchdog().report();
    ASSERT_GT(session.auditor().events_observed(), 0u) << "seed " << seed;
    if (::testing::Test::HasFailure()) {
      FAIL() << "composition failed at seed " << seed
             << " (replay with this seed)";
    }
  }
  session.uninstall();
}

}  // namespace
}  // namespace batcher
