// Cross-module integration tests: real runtime + BATCHER + data structures +
// baselines working together on paper-shaped workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_pq.hpp"
#include "ds/batched_skiplist.hpp"
#include "ds/batched_tree23.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

using ds::BatchedCounter;
using ds::BatchedPriorityQueue;
using ds::BatchedSkipList;
using ds::BatchedTree23;

// The paper's §7 workload shape: pre-populate, then parallel-loop inserts
// with 100 keys per BATCHIFY record.  Verified against the sequential list.
TEST(Integration, Figure5WorkloadEndToEnd) {
  constexpr std::int64_t kInitial = 20000;
  constexpr std::int64_t kCalls = 200;
  constexpr std::int64_t kPerCall = 100;

  rt::Scheduler sched(8);
  BatchedSkipList list(sched);
  conc::SeqSkipList reference;

  Xoshiro256 rng(1234);
  for (std::int64_t i = 0; i < kInitial; ++i) {
    const auto k = static_cast<std::int64_t>(rng.next_below(1u << 30));
    list.insert_unsafe(k);
    reference.insert(k);
  }
  ASSERT_EQ(list.size_unsafe(), reference.size());

  std::vector<std::vector<std::int64_t>> blocks(kCalls);
  for (auto& block : blocks) {
    block.resize(kPerCall);
    for (auto& k : block) {
      k = static_cast<std::int64_t>(rng.next_below(1u << 30));
      reference.insert(k);
    }
  }
  sched.run([&] {
    rt::parallel_for(0, kCalls, [&](std::int64_t i) {
      list.multi_insert(blocks[static_cast<std::size_t>(i)]);
    });
  });

  EXPECT_EQ(list.size_unsafe(), reference.size());
  EXPECT_TRUE(list.check_invariants());
  // Spot-check membership.
  for (const auto& block : blocks) {
    for (std::int64_t k : block) ASSERT_TRUE(list.contains_unsafe(k));
  }
}

TEST(Integration, TwoStructuresOneProgram) {
  rt::Scheduler sched(4);
  BatchedCounter counter(sched);
  BatchedSkipList list(sched);
  constexpr std::int64_t kN = 1000;
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      list.insert(i);
      counter.increment(1);
    });
  });
  EXPECT_EQ(counter.value_unsafe(), kN);
  EXPECT_EQ(list.size_unsafe(), static_cast<std::size_t>(kN));
}

TEST(Integration, SkipListAndTreeAgreeOnRandomWorkload) {
  rt::Scheduler sched(4);
  BatchedSkipList list(sched);
  BatchedTree23 tree(sched);
  constexpr std::int64_t kN = 2000;
  Xoshiro256 rng(77);
  std::vector<std::int64_t> keys(kN);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next_below(1500));

  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      const std::int64_t k = keys[static_cast<std::size_t>(i)];
      list.insert(k);
      tree.insert(k);
    });
  });
  EXPECT_EQ(list.size_unsafe(), tree.size_unsafe());
  for (std::int64_t k = 0; k < 1500; ++k) {
    ASSERT_EQ(list.contains_unsafe(k), tree.contains_unsafe(k)) << k;
  }
}

TEST(Integration, CounterLinearizableAcrossRepeatedRuns) {
  rt::Scheduler sched(8);
  BatchedCounter counter(sched);
  std::int64_t expected = 0;
  for (int round = 0; round < 5; ++round) {
    sched.run([&] {
      rt::parallel_for(0, 500, [&](std::int64_t) { counter.increment(2); });
    });
    expected += 1000;
    EXPECT_EQ(counter.value_unsafe(), expected) << "round " << round;
  }
}

// Dijkstra with the batched priority queue vs. a reference implementation.
// (The sssp example uses the same pattern; here it is verified.)
TEST(Integration, DijkstraWithBatchedPQ) {
  // Random sparse digraph.
  constexpr int kNodes = 200;
  constexpr int kEdges = 1200;
  struct Edge {
    int to;
    std::int64_t w;
  };
  std::vector<std::vector<Edge>> adj(kNodes);
  Xoshiro256 rng(5);
  for (int e = 0; e < kEdges; ++e) {
    const int u = static_cast<int>(rng.next_below(kNodes));
    const int v = static_cast<int>(rng.next_below(kNodes));
    const auto w = static_cast<std::int64_t>(1 + rng.next_below(100));
    adj[static_cast<std::size_t>(u)].push_back({v, w});
  }

  // Reference: plain Dijkstra.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> ref_dist(kNodes, kInf);
  {
    std::set<std::pair<std::int64_t, int>> pq;
    ref_dist[0] = 0;
    pq.insert({0, 0});
    while (!pq.empty()) {
      auto [d, u] = *pq.begin();
      pq.erase(pq.begin());
      if (d > ref_dist[static_cast<std::size_t>(u)]) continue;
      for (const Edge& e : adj[static_cast<std::size_t>(u)]) {
        if (d + e.w < ref_dist[static_cast<std::size_t>(e.to)]) {
          ref_dist[static_cast<std::size_t>(e.to)] = d + e.w;
          pq.insert({d + e.w, e.to});
        }
      }
    }
  }

  // Batched: distances packed into PQ keys as dist * kNodes + node.
  rt::Scheduler sched(4);
  BatchedPriorityQueue pq(sched);
  std::vector<std::atomic<std::int64_t>> dist(kNodes);
  for (auto& d : dist) d.store(kInf);
  dist[0].store(0);
  pq.insert_unsafe(0);  // key = 0 * kNodes + 0

  // Sequential settle loop with parallel relaxation of each frontier node's
  // edges; the PQ itself is accessed through implicit batching.
  sched.run([&] {
    while (true) {
      auto top = pq.extract_min();
      if (!top.has_value()) break;
      const std::int64_t d = *top / kNodes;
      const int u = static_cast<int>(*top % kNodes);
      if (d > dist[static_cast<std::size_t>(u)].load()) continue;
      auto& edges = adj[static_cast<std::size_t>(u)];
      rt::parallel_for(
          0, static_cast<std::int64_t>(edges.size()),
          [&](std::int64_t i) {
            const Edge& e = edges[static_cast<std::size_t>(i)];
            const std::int64_t nd = d + e.w;
            std::int64_t cur = dist[static_cast<std::size_t>(e.to)].load();
            while (nd < cur &&
                   !dist[static_cast<std::size_t>(e.to)]
                        .compare_exchange_weak(cur, nd)) {
            }
            if (nd <= dist[static_cast<std::size_t>(e.to)].load() && nd ==
                dist[static_cast<std::size_t>(e.to)].load()) {
              pq.insert(nd * kNodes + e.to);
            }
          },
          /*grain=*/4);
    }
  });

  for (int v = 0; v < kNodes; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)].load(),
              ref_dist[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

TEST(Integration, HeavyChurnStaysConsistent) {
  rt::Scheduler sched(8);
  BatchedSkipList list(sched);
  for (std::int64_t k = 0; k < 1000; k += 2) list.insert_unsafe(k);
  sched.run([&] {
    rt::parallel_for(0, 4000, [&](std::int64_t i) {
      const std::int64_t k = i % 1000;
      switch (i % 4) {
        case 0: list.insert(k); break;
        case 1: list.erase(k); break;
        case 2: list.contains(k); break;
        default: list.insert(k + 10000); break;
      }
    });
  });
  EXPECT_TRUE(list.check_invariants());
}

}  // namespace
}  // namespace batcher
