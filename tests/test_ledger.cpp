// Tests for the Theorem 1 bound ledger (src/trace/bound_ledger).
//
// Three layers:
//   1. Off-path guarantees: with no session active, strand scopes and batch
//      notes accrue nothing — the ledger stays zero.
//   2. Live-session measurement on a real scheduler: work/span ordering
//      (span <= work, run span <= session wall), per-domain s(n) evidence
//      reconciling with BatcherStats, the worker attribution partition
//      closing exactly to attributed_ns inside P * wall, and the task-count
//      span being a pure dag property (identical across repeated runs).
//   3. The same closure and invariance under the audit perturber across 500
//      distinct seeded schedules (only with BATCHER_AUDIT hooks compiled in):
//      nanosecond measurements move with the schedule, but the accounting
//      identities and the task-count span must not.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "audit/audit_session.hpp"
#include "audit/schedule_perturber.hpp"
#include "batcher/batcher.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "trace/bound_ledger.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace batcher {
namespace {

namespace hooks = rt::hooks;
using audit::AuditSession;
using audit::SchedulePerturber;
namespace ledger = trace::ledger;

#define REQUIRE_LIVE_HOOKS()                                               \
  do {                                                                     \
    if (!hooks::kEnabled) {                                                \
      GTEST_SKIP() << "BATCHER_AUDIT hooks not compiled into this build";  \
    }                                                                      \
  } while (0)

// A fixed fork-join dag with no batched ops: parallel_for with an explicit
// grain splits deterministically, so its task-count span is a property of
// (n, grain) alone — the invariance half of the sweep below.
void run_pure_dag(rt::Scheduler& sched, std::int64_t n) {
  std::atomic<std::int64_t> sum{0};
  sched.run([&] {
    rt::parallel_for(
        0, n, [&](std::int64_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
        /*grain=*/1);
  });
  ASSERT_EQ(sum.load(), n * (n - 1) / 2);
}

struct Measured {
  BatcherStats batcher;
  rt::StatsSnapshot sched;
  trace::MetricsReport metrics;
  ledger::LedgerSnapshot led;
  std::uint64_t wall_ns = 0;
};

// Counter increments on a scheduler constructed *inside* the session, so
// every worker's kWorkerStart/kWorkerExit bounds its attribution window.
Measured run_traced_counter(unsigned workers, std::int64_t ops,
                            std::int64_t grain) {
  trace::TraceSession::Options opt;
  opt.ring_capacity = std::size_t{1} << 16;
  trace::TraceSession session(opt);
  Measured out;
  {
    rt::Scheduler sched(workers);
    sched.export_final_stats(&out.sched);
    ds::BatchedCounter counter(sched);
    sched.run([&] {
      rt::parallel_for(0, ops, [&](std::int64_t) { counter.increment(1); },
                       grain);
    });
    EXPECT_EQ(counter.value_unsafe(), ops);
    out.batcher = counter.batcher().stats();
  }
  out.led = ledger::snapshot();
  const trace::Trace& tr = session.stop();
  out.wall_ns = tr.t1_ns > tr.t0_ns ? tr.t1_ns - tr.t0_ns : 0;
  out.metrics = trace::build_metrics(tr);
  return out;
}

// The accounting identities every traced session must satisfy; `m` may span
// more workers than one scheduler (the sweep runs two per session).
void expect_ledger_closes(const Measured& r) {
  const trace::MetricsReport::Attribution& attr = r.metrics.attribution;

  ASSERT_EQ(r.metrics.dropped_records, 0u) << "ring overflowed; grow capacity";
  EXPECT_FALSE(r.metrics.pairing_degraded);

  // The five buckets partition each worker's window by construction, so the
  // closure is exact, and every window fits inside the session.
  EXPECT_EQ(attr.useful_ns + attr.steal_ns + attr.trapped_ns +
                attr.flag_wait_ns + attr.parked_ns,
            attr.attributed_ns);
  EXPECT_LE(attr.attributed_ns, attr.worker_threads * r.wall_ns);

  // Span is a max over paths through the summed segments; a run's critical
  // path cannot outlast the session that contained it.
  EXPECT_LE(r.led.span_ns_total, r.led.work_ns);
  EXPECT_LE(r.led.longest_run_span_ns, r.wall_ns);
  EXPECT_LE(r.led.longest_run_span_tasks, r.led.span_tasks_total);

  // The scheduler-side counters are a view of the same strands: worker sinks
  // see a subset of global ledger work, and per-run folds obey the same
  // ordering the validator enforces on every BENCH_*.json row.
  EXPECT_LE(r.sched.work_ns, r.led.work_ns);
  EXPECT_LE(r.sched.span_ns, r.sched.work_ns);
  EXPECT_LE(r.sched.longest_run_span_ns, r.sched.span_ns);
  EXPECT_LE(r.sched.longest_run_span_tasks, r.sched.span_tasks);
}

// --- 1. Off-path guarantees -------------------------------------------------

TEST(LedgerDisabled, NothingAccruesWithoutASession) {
  ASSERT_FALSE(trace::enabled());
  ledger::reset();
  {
    rt::Scheduler sched(2);
    ds::BatchedCounter counter(sched);
    sched.run([&] {
      rt::parallel_for(0, 256, [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/2);
    });
    EXPECT_EQ(counter.value_unsafe(), 256);
  }
  const ledger::LedgerSnapshot led = ledger::snapshot();
  EXPECT_EQ(led.work_ns, 0u);
  EXPECT_EQ(led.strands, 0u);
  EXPECT_EQ(led.runs, 0u);
  EXPECT_EQ(led.span_ns_total, 0u);
  EXPECT_EQ(led.span_tasks_total, 0u);
  EXPECT_TRUE(led.domains.empty());
}

TEST(LedgerSizeBuckets, PowerOfTwoEdges) {
  EXPECT_EQ(ledger::size_bucket_of(1), 0u);
  EXPECT_EQ(ledger::size_bucket_of(2), 1u);
  EXPECT_EQ(ledger::size_bucket_of(3), 2u);
  EXPECT_EQ(ledger::size_bucket_of(4), 2u);
  EXPECT_EQ(ledger::size_bucket_of(5), 3u);
  EXPECT_EQ(ledger::size_bucket_of(64), 6u);
  EXPECT_EQ(ledger::size_bucket_of(65), 7u);
  EXPECT_EQ(ledger::size_bucket_of(100000), 7u);
  for (std::size_t b = 0; b + 1 < ledger::kSizeBuckets; ++b) {
    EXPECT_LT(ledger::size_bucket_max(b), ledger::size_bucket_max(b + 1));
  }
}

// --- 2. Live-session measurement --------------------------------------------

TEST(LedgerLive, CounterWorkloadMeasuresWorkSpanAndDomains) {
  const Measured r = run_traced_counter(/*workers=*/4, /*ops=*/2048,
                                        /*grain=*/4);
  expect_ledger_closes(r);

  EXPECT_GT(r.led.work_ns, 0u);
  EXPECT_GT(r.led.span_ns_total, 0u);
  EXPECT_EQ(r.led.runs, 1u);
  EXPECT_GT(r.led.strands, 0u);
  EXPECT_EQ(r.led.longest_run_span_ns, r.led.span_ns_total);
  EXPECT_EQ(r.sched.runs_measured, 1u);
  EXPECT_GT(r.sched.work_ns, 0u);

  // Exactly one domain (the counter), whose s(n) evidence reconciles with
  // BatcherStats: one sample per clean non-empty BOP, op totals intact.
  ASSERT_EQ(r.led.domains.size(), 1u);
  const ledger::DomainSnapshot& d = r.led.domains[0];
  EXPECT_EQ(d.batches, r.batcher.clean_nonempty_batches);
  EXPECT_EQ(d.ops, r.batcher.ops_processed);
  std::uint64_t wall_sum = 0, span_sum = 0, sample_count = 0;
  for (std::size_t b = 0; b < ledger::kSizeBuckets; ++b) {
    wall_sum += d.bop_wall_by_size[b].sum_ns();
    span_sum += d.bop_span_by_size[b].sum_ns();
    sample_count += d.bop_wall_by_size[b].count();
    EXPECT_EQ(d.bop_wall_by_size[b].count(), d.bop_span_by_size[b].count())
        << "size bucket " << b;
  }
  EXPECT_EQ(wall_sum, d.sum_bop_wall_ns);
  EXPECT_EQ(span_sum, d.sum_bop_span_ns);
  EXPECT_EQ(sample_count, d.batches);
  // A batch's measured span is a dependent chain inside its wall window.
  EXPECT_LE(d.sum_bop_span_ns, d.sum_bop_wall_ns);
}

TEST(LedgerLive, AttributionPartitionHasUsefulTime) {
  const Measured r = run_traced_counter(/*workers=*/4, /*ops=*/1024,
                                        /*grain=*/2);
  expect_ledger_closes(r);
  EXPECT_EQ(r.metrics.attribution.worker_threads, 4u);
  EXPECT_GT(r.metrics.attribution.attributed_ns, 0u);
  EXPECT_GT(r.metrics.attribution.useful_ns, 0u);
  // The online ledger only accrues inside traced useful/flag windows, so it
  // can never exceed that offline time by more than clock-read slack.
  const std::uint64_t offline =
      r.metrics.attribution.useful_ns + r.metrics.attribution.flag_wait_ns;
  EXPECT_LE(r.led.work_ns,
            offline + offline / 50 + 10'000'000u);
}

TEST(LedgerLive, SpanTasksIsADagPropertyAcrossRepeats) {
  // Same pure dag, five runs: wall-clock spans differ, task-count spans are
  // a function of the dag alone.
  std::uint64_t expected = 0;
  for (int rep = 0; rep < 5; ++rep) {
    trace::TraceSession::Options opt;
    opt.ring_capacity = std::size_t{1} << 16;
    trace::TraceSession session(opt);
    rt::StatsSnapshot stats;
    {
      rt::Scheduler sched(4);
      sched.export_final_stats(&stats);
      ASSERT_NO_FATAL_FAILURE(run_pure_dag(sched, 64));
    }
    session.stop();
    ASSERT_EQ(stats.runs_measured, 1u) << "rep " << rep;
    ASSERT_GT(stats.span_tasks, 0u) << "rep " << rep;
    if (rep == 0) {
      expected = stats.span_tasks;
    } else {
      ASSERT_EQ(stats.span_tasks, expected) << "rep " << rep;
    }
  }
}

TEST(LedgerLive, BackToBackSessionsResetTheLedger) {
  const Measured a = run_traced_counter(2, 512, 2);
  const Measured b = run_traced_counter(2, 512, 2);
  expect_ledger_closes(a);
  expect_ledger_closes(b);
  // The second session measured only the second run.
  EXPECT_EQ(a.led.runs, 1u);
  EXPECT_EQ(b.led.runs, 1u);
  ASSERT_EQ(b.led.domains.size(), 1u);
  EXPECT_EQ(b.led.domains[0].ops, 512u);
}

// --- 3. Closure under the audit perturber -----------------------------------

TEST(LedgerPerturbedSweep, AccountingClosesAcross500Schedules) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 500;

  SchedulePerturber::Options opts;
  opts.yield_one_in = 96;
  opts.pause_one_in = 8;
  opts.max_pause_spins = 32;
  AuditSession audit(kWorkers, 0, opts);
  audit.install();

  std::uint64_t expected_span_tasks = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    audit.reseed(seed);
    trace::TraceSession::Options topt;
    topt.ring_capacity = std::size_t{1} << 16;
    trace::TraceSession session(topt);
    Measured r;
    rt::StatsSnapshot pure;
    {
      // Scheduler 1: the fixed fork-join dag whose task-count span must be
      // identical across every perturbed schedule.
      rt::Scheduler sched(kWorkers);
      sched.export_final_stats(&pure);
      ASSERT_NO_FATAL_FAILURE(run_pure_dag(sched, 64));
    }
    {
      // Scheduler 2: batched ops, so the sweep also covers the batchify
      // pause/resume handoff and launch dependency folds.
      rt::Scheduler sched(kWorkers);
      sched.export_final_stats(&r.sched);
      ds::BatchedCounter counter(sched);
      sched.run([&] {
        rt::parallel_for(0, 48, [&](std::int64_t) { counter.increment(1); },
                         /*grain=*/1);
      });
      ASSERT_EQ(counter.value_unsafe(), 48);
      r.batcher = counter.batcher().stats();
    }
    r.led = ledger::snapshot();
    const trace::Trace& tr = session.stop();
    r.wall_ns = tr.t1_ns > tr.t0_ns ? tr.t1_ns - tr.t0_ns : 0;
    r.metrics = trace::build_metrics(tr);

    ASSERT_NO_FATAL_FAILURE(expect_ledger_closes(r)) << "seed " << seed;
    // Both schedulers were born and joined inside the session: attribution
    // must cover all 2 * kWorkers windows and close inside P * wall.
    ASSERT_EQ(r.metrics.attribution.worker_threads, 2 * kWorkers)
        << "seed " << seed;
    // Schedule-invariance: the perturber reorders execution, not the dag.
    ASSERT_EQ(pure.runs_measured, 1u) << "seed " << seed;
    if (seed == 0) {
      expected_span_tasks = pure.span_tasks;
      ASSERT_GT(expected_span_tasks, 0u);
    } else {
      ASSERT_EQ(pure.span_tasks, expected_span_tasks)
          << "seed " << seed << " (span_tasks must be a dag property)";
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "ledger closure failed at seed " << seed
             << " (replay with this seed)";
    }
  }
  audit.uninstall();
}

}  // namespace
}  // namespace batcher
