// Schedule-exploration + invariant-audit tests.
//
// Three layers:
//   1. Synthetic event streams drive the InvariantAuditor directly — these
//      run in every build and prove that broken schedules (skipped batch-flag
//      CAS, trapped worker on a core deque, oversized batches, bad status
//      transitions, parity breaks) are caught with a report naming the
//      invariant, the worker, and the offending transition.
//   2. The SchedulePerturber's decision streams are pure functions of
//      (seed, lane, index): replaying a seed replays the exact per-thread
//      hook-decision sequence.
//   3. With BATCHER_AUDIT compiled in, live schedulers are audited end to
//      end: stress scenarios stay invariant-clean across >=1000 distinct
//      seeded schedules, and a deliberately faulted build (batchify claiming
//      LAUNCHBATCH without the batch-flag CAS) is caught.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "audit/audit_session.hpp"
#include "audit/invariant_auditor.hpp"
#include "audit/schedule_perturber.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_wbtree.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

namespace hooks = rt::hooks;
using audit::AuditSession;
using audit::InvariantAuditor;
using audit::SchedulePerturber;
using hooks::HookEvent;
using hooks::HookPoint;
using rt::TaskKind;

// --- 1. Auditor vs synthetic schedules -------------------------------------

// A well-formed single-op protocol round trip on worker `w`.
std::vector<HookEvent> clean_round_trip(unsigned w, const void* dom) {
  return {
      {HookPoint::kBatchifyEnter, w, TaskKind::Core, TaskKind::Core, dom},
      {HookPoint::kStatusFreeToPending, w, TaskKind::Core, TaskKind::Core, dom},
      {HookPoint::kPop, w, TaskKind::Batch, TaskKind::Core, nullptr, 0},
      {HookPoint::kFlagCasWon, w, TaskKind::Core, TaskKind::Core, dom},
      {HookPoint::kLaunchEnter, w, TaskKind::Batch, TaskKind::Batch, dom},
      {HookPoint::kStatusPendingToExecuting, w, TaskKind::Batch,
       TaskKind::Batch, dom},
      {HookPoint::kBatchCollected, w, TaskKind::Batch, TaskKind::Batch, dom, 1},
      {HookPoint::kStatusExecutingToDone, w, TaskKind::Batch, TaskKind::Batch,
       dom},
      {HookPoint::kLaunchExit, w, TaskKind::Batch, TaskKind::Batch, dom, 1},
      {HookPoint::kStatusDoneToFree, w, TaskKind::Core, TaskKind::Core, dom},
      {HookPoint::kBatchifyExit, w, TaskKind::Core, TaskKind::Core, dom},
  };
}

TEST(AuditorSynthetic, CleanProtocolRoundTripHasNoViolations) {
  InvariantAuditor auditor(4);
  int dom = 0;
  for (unsigned w = 0; w < 4; ++w) {
    for (const HookEvent& ev : clean_round_trip(w, &dom)) auditor.on_event(ev);
  }
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  EXPECT_EQ(auditor.events_observed(), 4 * 11u);
}

TEST(AuditorSynthetic, SkippedBatchFlagCasIsCaught) {
  // The "broken build" schedule: LAUNCHBATCH entered without any kFlagCasWon,
  // exactly what a build that skips the batch-flag CAS produces.
  InvariantAuditor auditor(4);
  int dom = 0;
  auditor.on_event(
      {HookPoint::kBatchifyEnter, 2, TaskKind::Core, TaskKind::Core, &dom});
  auditor.on_event({HookPoint::kStatusFreeToPending, 2, TaskKind::Core,
                    TaskKind::Core, &dom});
  auditor.on_event(
      {HookPoint::kLaunchEnter, 2, TaskKind::Batch, TaskKind::Batch, &dom});
  ASSERT_FALSE(auditor.clean());
  const std::string report = auditor.report();
  EXPECT_NE(report.find("Invariant 1"), std::string::npos) << report;
  EXPECT_NE(report.find("CAS was skipped"), std::string::npos) << report;
  EXPECT_NE(report.find("worker 2"), std::string::npos) << report;
}

TEST(AuditorSynthetic, OverlappingFlagAcquisitionIsCaught) {
  InvariantAuditor auditor(4);
  int dom = 0;
  auditor.on_event(
      {HookPoint::kFlagCasWon, 0, TaskKind::Core, TaskKind::Core, &dom});
  auditor.on_event(
      {HookPoint::kFlagCasWon, 1, TaskKind::Core, TaskKind::Core, &dom});
  ASSERT_EQ(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant,
            "Invariant 1 (one active batch)");
  EXPECT_EQ(auditor.violations()[0].worker, 1u);
}

TEST(AuditorSynthetic, TrappedWorkerTouchingCoreDequeIsCaught) {
  InvariantAuditor auditor(4);
  int dom = 0;
  auditor.on_event(
      {HookPoint::kBatchifyEnter, 1, TaskKind::Core, TaskKind::Core, &dom});
  // Fig. 3 says a trapped worker only executes batch work; popping or
  // stealing core is the violation.
  auditor.on_event(
      {HookPoint::kPop, 1, TaskKind::Core, TaskKind::Core, nullptr, 1});
  auditor.on_event(
      {HookPoint::kStealAttempt, 1, TaskKind::Core, TaskKind::Core, nullptr, 0});
  EXPECT_EQ(auditor.violation_count(), 2u);
  const std::string report = auditor.report();
  EXPECT_NE(report.find("trapped"), std::string::npos) << report;
  EXPECT_NE(report.find("worker 1"), std::string::npos) << report;
}

TEST(AuditorSynthetic, BatchContextCoreStealIsCaught) {
  InvariantAuditor auditor(4);
  auditor.on_event(
      {HookPoint::kStealAttempt, 3, TaskKind::Core, TaskKind::Batch, nullptr, 0});
  ASSERT_EQ(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant,
            "Invariant 3 (core/batch deque separation)");
}

TEST(AuditorSynthetic, OversizedBatchIsCaught) {
  InvariantAuditor auditor(4);
  int dom = 0;
  auditor.on_event(
      {HookPoint::kFlagCasWon, 0, TaskKind::Core, TaskKind::Core, &dom});
  auditor.on_event(
      {HookPoint::kLaunchEnter, 0, TaskKind::Batch, TaskKind::Batch, &dom});
  auditor.on_event(
      {HookPoint::kBatchCollected, 0, TaskKind::Batch, TaskKind::Batch, &dom, 5});
  ASSERT_EQ(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant,
            "Invariant 2 (batch size at most P)");
  EXPECT_NE(auditor.report().find("collected 5 ops but P = 4"),
            std::string::npos)
      << auditor.report();
}

TEST(AuditorSynthetic, IllegalStatusTransitionIsCaught) {
  InvariantAuditor auditor(4);
  int dom = 0;
  // pending -> done skips executing: the Fig. 3 machine must flag it (twice:
  // once for the bad edge, once for flipping to done outside a launch).
  auditor.on_event({HookPoint::kStatusFreeToPending, 0, TaskKind::Core,
                    TaskKind::Core, &dom});
  auditor.on_event({HookPoint::kStatusExecutingToDone, 0, TaskKind::Batch,
                    TaskKind::Batch, &dom});
  ASSERT_GE(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant,
            "Fig. 3 (trapped-worker status machine)");
  EXPECT_NE(auditor.report().find("pending->done"), std::string::npos)
      << auditor.report();
}

TEST(AuditorSynthetic, DoubleSuspendedOpIsCaught) {
  InvariantAuditor auditor(4);
  int dom_a = 0, dom_b = 0;
  auditor.on_event(
      {HookPoint::kBatchifyEnter, 0, TaskKind::Core, TaskKind::Core, &dom_a});
  auditor.on_event(
      {HookPoint::kBatchifyEnter, 0, TaskKind::Core, TaskKind::Core, &dom_b});
  ASSERT_EQ(auditor.violation_count(), 1u);
  EXPECT_NE(auditor.report().find("more than one suspended op"),
            std::string::npos)
      << auditor.report();
}

TEST(AuditorSynthetic, AlternatingStealParityBreakIsCaught) {
  InvariantAuditor auditor(4);
  auditor.on_event({HookPoint::kAlternatingSteal, 0, TaskKind::Core,
                    TaskKind::Core});
  auditor.on_event({HookPoint::kAlternatingSteal, 0, TaskKind::Batch,
                    TaskKind::Core});
  auditor.on_event({HookPoint::kAlternatingSteal, 0, TaskKind::Batch,
                    TaskKind::Core});
  ASSERT_EQ(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, "§4 (alternating-steal parity)");
}

TEST(AuditorSynthetic, ResetForgetsStateAndViolations) {
  InvariantAuditor auditor(4);
  int dom = 0;
  auditor.on_event(
      {HookPoint::kLaunchEnter, 0, TaskKind::Batch, TaskKind::Batch, &dom});
  ASSERT_FALSE(auditor.clean());
  auditor.reset();
  EXPECT_TRUE(auditor.clean());
  EXPECT_EQ(auditor.events_observed(), 0u);
  for (const HookEvent& ev : clean_round_trip(0, &dom)) auditor.on_event(ev);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- 2. Perturber determinism / replay -------------------------------------

// Synthetic stream: any mix of events; content does not influence decisions,
// only their count does.
void feed_events(SchedulePerturber& p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    p.on_event({HookPoint::kWorkerLoop, 0, TaskKind::Core, TaskKind::Core});
  }
}

TEST(PerturberReplay, SameSeedReplaysIdenticalDecisionSequence) {
  constexpr std::size_t kEvents = 4096;
  SchedulePerturber first(4, /*seed=*/1337);
  feed_events(first, kEvents);
  const std::vector<std::uint8_t> live = first.trace(4);  // non-worker lane
  ASSERT_EQ(live.size(), kEvents);

  SchedulePerturber replay(4, /*seed=*/1337);
  feed_events(replay, kEvents);
  EXPECT_EQ(replay.trace(4), live);
  EXPECT_EQ(replay.trace_fingerprint(), first.trace_fingerprint());

  // reseed() to the same seed restarts the identical stream.
  first.reseed(1337);
  feed_events(first, kEvents);
  EXPECT_EQ(first.trace(4), live);
}

TEST(PerturberReplay, DecisionStreamIsAPureFunctionOfSeedLaneIndex) {
  SchedulePerturber p(4, /*seed=*/42);
  feed_events(p, 1000);
  const auto& trace = p.trace(4);
  ASSERT_EQ(trace.size(), 1000u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], p.decision_at(42, 4, i)) << "index " << i;
  }
}

TEST(PerturberReplay, DifferentSeedsProduceDifferentSchedules) {
  SchedulePerturber a(4, 1);
  SchedulePerturber b(4, 2);
  feed_events(a, 4096);
  feed_events(b, 4096);
  EXPECT_NE(a.trace(4), b.trace(4));
  EXPECT_NE(a.trace_fingerprint(), b.trace_fingerprint());
}

TEST(PerturberReplay, PerturbationsActuallyOccur) {
  SchedulePerturber p(4, 7);
  feed_events(p, 4096);
  std::size_t yields = 0, spins = 0;
  for (std::uint8_t d : p.trace(4)) {
    yields += d == 1;
    spins += d == 2;
  }
  EXPECT_GT(yields, 0u);
  EXPECT_GT(spins, 0u);
}

// --- 3. Live audited schedules (requires BATCHER_AUDIT) ---------------------

#define REQUIRE_LIVE_HOOKS()                                              \
  do {                                                                    \
    if (!hooks::kEnabled)                                                 \
      GTEST_SKIP() << "built without BATCHER_AUDIT; no live hook stream"; \
  } while (0)

// Audited variant of the stress suite's irregular recursion.
std::int64_t irregular(std::uint64_t seed, int depth,
                       std::atomic<std::int64_t>& leaves) {
  if (depth <= 0) {
    leaves.fetch_add(1);
    return 1;
  }
  SplitMix64 mix(seed);
  const std::uint64_t a = mix.next();
  std::int64_t left = 0, right = 0;
  rt::parallel_invoke([&] { left = irregular(a, depth - 1, leaves); },
                      [&] { right = irregular(a ^ 0x9e37, depth - 2, leaves); });
  return left + right;
}

TEST(AuditedLive, CounterStormIsInvariantCleanAndTraceReplayable) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeed = 99;
  AuditSession session(kWorkers, kSeed);
  session.install();
  {
    rt::Scheduler sched(kWorkers);
    ds::BatchedCounter counter(sched);
    sched.run([&] {
      rt::parallel_for(0, 256, [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/1);
    });
    ASSERT_EQ(counter.value_unsafe(), 256);
  }
  session.uninstall();

  EXPECT_TRUE(session.auditor().clean()) << session.auditor().report();
  EXPECT_GT(session.auditor().events_observed(), 0u);

  // Replay contract on the live stream: every recorded decision equals the
  // pure function of (seed, lane, index) — rerunning a printed seed replays
  // each thread's exact hook-decision sequence.
  SchedulePerturber& p = session.perturber();
  for (unsigned lane = 0; lane <= kWorkers; ++lane) {
    const auto& trace = p.trace(lane);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(trace[i], p.decision_at(kSeed, lane, i))
          << "lane " << lane << " index " << i;
    }
  }
}

TEST(AuditedLive, StressScenariosStayClean) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 8;
  AuditSession session(kWorkers, 0xabcdef);
  session.install();
  {
    rt::Scheduler sched(kWorkers);
    ds::BatchedCounter counter(sched);
    ds::BatchedWBTree tree(sched);
    std::atomic<std::int64_t> leaves{0};
    sched.run([&] {
      rt::parallel_invoke(
          [&] { irregular(7, 10, leaves); },
          [&] {
            rt::parallel_for(0, 300, [&](std::int64_t i) {
              if (i % 2 == 0) {
                counter.increment(1);
              } else {
                tree.insert(i % 97);
              }
            });
          });
    });
    EXPECT_GT(leaves.load(), 0);
    EXPECT_EQ(counter.value_unsafe(), 150);
    EXPECT_TRUE(tree.check_invariants());
  }
  session.uninstall();
  EXPECT_TRUE(session.auditor().clean()) << session.auditor().report();
}

TEST(AuditedLive, SweepObservesThousandDistinctSchedulesCleanly) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 1100;

  // Light perturbation keeps the sweep fast while still forcing distinct
  // interleavings per seed.
  SchedulePerturber::Options opts;
  opts.yield_one_in = 96;
  opts.pause_one_in = 8;
  opts.max_pause_spins = 32;

  AuditSession session(kWorkers, 0, opts);
  session.install();

  std::unordered_set<std::uint64_t> fingerprints;
  std::uint64_t schedules_audited = 0;
  std::uint64_t total_events = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    session.reseed(seed);
    {
      rt::Scheduler sched(kWorkers);
      // Rotate the batch-setup policy so the sweep audits the announce-list
      // protocol (§11) as well as both Fig. 4 scan variants.
      const Batcher::SetupPolicy policy =
          seed % 2 == 0 ? Batcher::SetupPolicy::Announce
                        : (seed % 4 == 1 ? Batcher::SetupPolicy::Sequential
                                         : Batcher::SetupPolicy::Parallel);
      ds::BatchedCounter counter(sched, 0, policy);
      switch (seed % 3) {
        case 0:
          sched.run([&] {
            rt::parallel_for(0, 48,
                             [&](std::int64_t) { counter.increment(1); },
                             /*grain=*/1);
          });
          ASSERT_EQ(counter.value_unsafe(), 48);
          break;
        case 1:
          sched.run([&] {
            rt::parallel_for(0, 8, [&](std::int64_t) {
              rt::parallel_for(0, 6,
                               [&](std::int64_t) { counter.increment(1); },
                               /*grain=*/1);
            },
                             /*grain=*/1);
          });
          ASSERT_EQ(counter.value_unsafe(), 48);
          break;
        default: {
          std::atomic<std::int64_t> leaves{0};
          sched.run([&] { irregular(seed, 6, leaves); });
          ASSERT_GT(leaves.load(), 0);
          break;
        }
      }
    }  // scheduler destroyed: hook stream quiescent, traces readable

    ASSERT_TRUE(session.auditor().clean())
        << "seed " << seed << " (replay with this seed)\n"
        << session.auditor().report();
    total_events += session.auditor().events_observed();
    fingerprints.insert(session.perturber().trace_fingerprint());
    ++schedules_audited;
  }
  session.uninstall();

  EXPECT_GE(schedules_audited, 1000u);
  EXPECT_GE(fingerprints.size(), 1000u)
      << "seeded schedules were not distinct enough";
  EXPECT_GT(total_events, schedules_audited);  // hooks actually fired
}

TEST(AuditedLive, FaultedBuildSkippingBatchFlagCasIsCaught) {
  REQUIRE_LIVE_HOOKS();
#if BATCHER_AUDIT
  constexpr unsigned kWorkers = 4;
  AuditSession session(kWorkers, 5);
  session.install();
  hooks::test_faults().skip_batch_flag_cas.store(true,
                                                 std::memory_order_relaxed);
  {
    rt::Scheduler sched(kWorkers);
    ds::BatchedCounter counter(sched);
    sched.run([&] {
      rt::parallel_for(0, 64, [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/1);
    });
    // The fault only suppresses the CAS *event*; execution stays correct.
    EXPECT_EQ(counter.value_unsafe(), 64);
  }
  hooks::test_faults().skip_batch_flag_cas.store(false,
                                                 std::memory_order_relaxed);
  session.uninstall();

  ASSERT_FALSE(session.auditor().clean())
      << "auditor failed to catch the skipped batch-flag CAS";
  const std::string report = session.auditor().report();
  EXPECT_NE(report.find("Invariant 1"), std::string::npos) << report;
  EXPECT_NE(report.find("CAS was skipped"), std::string::npos) << report;
#endif
}

}  // namespace
}  // namespace batcher
