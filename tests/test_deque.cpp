// Unit and stress tests for the Chase–Lev work-stealing deque.
//
// The deque stores Task* opaquely, so tests use tagged fake pointers instead
// of real task frames: conservation is checked by value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"

namespace batcher::rt {
namespace {

Task* tag(std::uintptr_t v) { return reinterpret_cast<Task*>(v << 4); }
std::uintptr_t untag(Task* t) { return reinterpret_cast<std::uintptr_t>(t) >> 4; }

TEST(WorkDeque, StartsEmpty) {
  WorkDeque d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_EQ(d.size_estimate(), 0);
}

TEST(WorkDeque, PopIsLifo) {
  WorkDeque d;
  for (std::uintptr_t i = 1; i <= 5; ++i) d.push(tag(i));
  for (std::uintptr_t i = 5; i >= 1; --i) EXPECT_EQ(untag(d.pop()), i);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(WorkDeque, StealIsFifo) {
  WorkDeque d;
  for (std::uintptr_t i = 1; i <= 5; ++i) d.push(tag(i));
  for (std::uintptr_t i = 1; i <= 5; ++i) EXPECT_EQ(untag(d.steal()), i);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(WorkDeque, MixedPopAndSteal) {
  WorkDeque d;
  for (std::uintptr_t i = 1; i <= 4; ++i) d.push(tag(i));
  EXPECT_EQ(untag(d.steal()), 1u);  // top
  EXPECT_EQ(untag(d.pop()), 4u);    // bottom
  EXPECT_EQ(untag(d.steal()), 2u);
  EXPECT_EQ(untag(d.pop()), 3u);
  EXPECT_TRUE(d.empty());
}

TEST(WorkDeque, GrowsPastInitialCapacity) {
  WorkDeque d(4);
  constexpr std::uintptr_t kCount = 1000;
  for (std::uintptr_t i = 1; i <= kCount; ++i) d.push(tag(i));
  EXPECT_EQ(d.size_estimate(), static_cast<std::int64_t>(kCount));
  for (std::uintptr_t i = kCount; i >= 1; --i) {
    ASSERT_EQ(untag(d.pop()), i);
  }
}

TEST(WorkDeque, GrowPreservesOrderUnderPartialConsumption) {
  WorkDeque d(4);
  // Interleave pushes and steals so top advances before growth.
  for (std::uintptr_t i = 1; i <= 3; ++i) d.push(tag(i));
  EXPECT_EQ(untag(d.steal()), 1u);
  for (std::uintptr_t i = 4; i <= 64; ++i) d.push(tag(i));  // forces growth
  for (std::uintptr_t i = 2; i <= 64; ++i) ASSERT_EQ(untag(d.steal()), i);
}

TEST(WorkDeque, ReclaimRetiredFreesOldBuffersAndKeepsDequeUsable) {
  WorkDeque d(4);
  constexpr std::uintptr_t kCount = 1000;  // 4 -> 1024: several growths
  for (std::uintptr_t i = 1; i <= kCount; ++i) d.push(tag(i));
  EXPECT_GT(d.retired_count(), 0u);
  // Single-threaded, so this call site is trivially quiescent.
  d.reclaim_retired();
  EXPECT_EQ(d.retired_count(), 0u);
  // The live buffer is untouched: full LIFO drain still sees every element.
  for (std::uintptr_t i = kCount; i >= 1; --i) ASSERT_EQ(untag(d.pop()), i);
  EXPECT_EQ(d.pop(), nullptr);
  // Growth after a reclaim retires into the emptied list again.
  for (std::uintptr_t i = 1; i <= 2 * kCount; ++i) d.push(tag(i));
  EXPECT_GT(d.retired_count(), 0u);
}

TEST(WorkDeque, SingleElementRace) {
  // Owner pop vs. thief steal of the final element: exactly one side wins.
  for (int round = 0; round < 200; ++round) {
    WorkDeque d;
    d.push(tag(1));
    std::atomic<int> wins{0};
    std::thread thief([&] {
      if (d.steal() != nullptr) wins.fetch_add(1);
    });
    if (d.pop() != nullptr) wins.fetch_add(1);
    thief.join();
    EXPECT_EQ(wins.load(), 1) << "round " << round;
  }
}

// Owner pushes N values and pops some; thieves steal the rest.  Every value
// must be consumed exactly once across all parties.
TEST(WorkDequeStress, ConservationUnderConcurrentSteals) {
  constexpr int kThieves = 3;
  constexpr std::uintptr_t kCount = 20000;
  WorkDeque d(8);

  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::vector<std::set<std::uintptr_t>> stolen(kThieves);
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      while (!done.load(std::memory_order_acquire)) {
        Task* task = d.steal();
        if (task != nullptr) stolen[static_cast<std::size_t>(t)].insert(untag(task));
      }
      // Final drain.
      Task* task;
      while ((task = d.steal()) != nullptr) {
        stolen[static_cast<std::size_t>(t)].insert(untag(task));
      }
    });
  }

  std::set<std::uintptr_t> popped;
  start.store(true, std::memory_order_release);
  for (std::uintptr_t i = 1; i <= kCount; ++i) {
    d.push(tag(i));
    if (i % 3 == 0) {
      Task* task = d.pop();
      if (task != nullptr) popped.insert(untag(task));
    }
  }
  Task* task;
  while ((task = d.pop()) != nullptr) popped.insert(untag(task));
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::set<std::uintptr_t> all(popped);
  std::size_t total = popped.size();
  for (const auto& s : stolen) {
    total += s.size();
    all.insert(s.begin(), s.end());
  }
  EXPECT_EQ(total, kCount) << "an element was consumed twice or lost";
  EXPECT_EQ(all.size(), kCount);
}

}  // namespace
}  // namespace batcher::rt
