// Tests for the batched 2-3 search tree (paper §3).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "ds/batched_tree23.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

using Key = BatchedTree23::Key;

TEST(BatchedTree23, EmptyTreeBasics) {
  rt::Scheduler sched(1);
  BatchedTree23 tree(sched);
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_EQ(tree.height_unsafe(), -1);
  EXPECT_FALSE(tree.contains_unsafe(1));
  EXPECT_TRUE(tree.check_invariants());
}

TEST(BatchedTree23, SingleInsertMakesLeafRoot) {
  rt::Scheduler sched(1);
  BatchedTree23 tree(sched);
  EXPECT_TRUE(tree.insert_unsafe(42));
  EXPECT_EQ(tree.size_unsafe(), 1u);
  EXPECT_EQ(tree.height_unsafe(), 0);
  EXPECT_TRUE(tree.contains_unsafe(42));
  EXPECT_FALSE(tree.insert_unsafe(42));
  EXPECT_TRUE(tree.check_invariants());
}

TEST(BatchedTree23, SequentialInsertsStayBalanced) {
  rt::Scheduler sched(1);
  BatchedTree23 tree(sched);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.insert_unsafe(k));
    ASSERT_TRUE(tree.check_invariants()) << "after key " << k;
  }
  EXPECT_EQ(tree.size_unsafe(), 1000u);
  // 2-3 tree height bounds: log3(n) <= h <= log2(n).
  EXPECT_LE(tree.height_unsafe(), 11);  // ceil(log2(1000)) + 1
  EXPECT_GE(tree.height_unsafe(), 6);   // floor(log3(1000))
}

TEST(BatchedTree23, BulkBuildFromSorted) {
  rt::Scheduler sched(4);
  BatchedTree23 tree(sched);
  std::vector<Key> keys(10000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<Key>(i * 2);
  tree.bulk_build_unsafe(keys);
  EXPECT_EQ(tree.size_unsafe(), keys.size());
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_TRUE(tree.contains_unsafe(0));
  EXPECT_TRUE(tree.contains_unsafe(19998));
  EXPECT_FALSE(tree.contains_unsafe(3));
}

class Tree23Param : public ::testing::TestWithParam<unsigned> {};

TEST_P(Tree23Param, ParallelInsertsMatchReferenceSet) {
  rt::Scheduler sched(GetParam());
  BatchedTree23 tree(sched);
  constexpr std::int64_t kN = 4000;
  Xoshiro256 rng(31);
  std::vector<Key> keys(kN);
  for (auto& k : keys) k = static_cast<Key>(rng.next_below(kN));
  std::set<Key> reference(keys.begin(), keys.end());

  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      tree.insert(keys[static_cast<std::size_t>(i)]);
    });
  });
  EXPECT_EQ(tree.size_unsafe(), reference.size());
  EXPECT_TRUE(tree.check_invariants());
  for (Key k : reference) ASSERT_TRUE(tree.contains_unsafe(k)) << k;
}

TEST_P(Tree23Param, IdenticalKeysInOneStorm) {
  // The paper's motivating hard case: P identical keys inserted at once.
  rt::Scheduler sched(GetParam());
  BatchedTree23 tree(sched);
  std::atomic<int> winners{0};
  sched.run([&] {
    rt::parallel_for(0, 64, [&](std::int64_t) {
      if (tree.insert(7)) winners.fetch_add(1);
    });
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(tree.size_unsafe(), 1u);
  EXPECT_TRUE(tree.check_invariants());
}

TEST_P(Tree23Param, ErasesWithTombstonesAndRebuild) {
  rt::Scheduler sched(GetParam());
  BatchedTree23 tree(sched);
  for (Key k = 0; k < 1000; ++k) tree.insert_unsafe(k);
  std::atomic<std::int64_t> hits{0};
  sched.run([&] {
    rt::parallel_for(0, 1000, [&](std::int64_t i) {
      if (i % 4 != 0) {
        if (tree.erase(i)) hits.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(hits.load(), 750);
  EXPECT_EQ(tree.size_unsafe(), 250u);
  EXPECT_TRUE(tree.check_invariants());
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_EQ(tree.contains_unsafe(k), k % 4 == 0) << "key " << k;
  }
}

TEST_P(Tree23Param, ResurrectionAfterErase) {
  rt::Scheduler sched(GetParam());
  BatchedTree23 tree(sched);
  for (Key k = 0; k < 100; ++k) tree.insert_unsafe(k);
  sched.run([&] {
    rt::parallel_for(0, 100, [&](std::int64_t i) { tree.erase(i); });
  });
  EXPECT_EQ(tree.size_unsafe(), 0u);
  sched.run([&] {
    rt::parallel_for(0, 100, [&](std::int64_t i) {
      EXPECT_TRUE(tree.insert(i));  // resurrect or fresh-insert, still "new"
    });
  });
  EXPECT_EQ(tree.size_unsafe(), 100u);
  EXPECT_TRUE(tree.check_invariants());
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(tree.contains_unsafe(k));
}

TEST_P(Tree23Param, MixedWorkloadDisjointKeyRanges) {
  rt::Scheduler sched(GetParam());
  BatchedTree23 tree(sched);
  for (Key k = 0; k < 600; ++k) tree.insert_unsafe(k);
  std::atomic<std::int64_t> contains_hits{0}, erase_hits{0}, inserts{0};
  sched.run([&] {
    rt::parallel_for(0, 600, [&](std::int64_t i) {
      switch (i % 3) {
        case 0:
          if (tree.contains(i)) contains_hits.fetch_add(1);
          break;
        case 1:
          if (tree.erase(i)) erase_hits.fetch_add(1);
          break;
        default:
          if (tree.insert(i + 10000)) inserts.fetch_add(1);
          break;
      }
    });
  });
  EXPECT_EQ(contains_hits.load(), 200);
  EXPECT_EQ(erase_hits.load(), 200);
  EXPECT_EQ(inserts.load(), 200);
  EXPECT_EQ(tree.size_unsafe(), 600u);
  EXPECT_TRUE(tree.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, Tree23Param,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedTree23, BatchDuplicateInsertsFirstWins) {
  rt::Scheduler sched(4);
  BatchedTree23 tree(sched);
  using Op = BatchedTree23::Op;
  Op a, b;
  a.kind = b.kind = BatchedTree23::Kind::Insert;
  a.key = b.key = 5;
  OpRecordBase* ops[2] = {&a, &b};
  tree.run_batch(ops, 2);
  EXPECT_TRUE(a.found);
  EXPECT_FALSE(b.found);
  EXPECT_EQ(tree.size_unsafe(), 1u);
}

TEST(BatchedTree23, LargeBatchIntoSmallTree) {
  // Bulk insert far more keys than the tree holds: exercises multi-level
  // splitting and root growth in a single batch.
  rt::Scheduler sched(4);
  BatchedTree23 tree(sched);
  tree.insert_unsafe(500000);
  std::vector<BatchedTree23::Op> ops(512);
  std::vector<OpRecordBase*> ptrs;
  Xoshiro256 rng(77);
  std::set<Key> reference{500000};
  for (auto& op : ops) {
    op.kind = BatchedTree23::Kind::Insert;
    op.key = static_cast<Key>(rng.next_below(1u << 30));
    reference.insert(op.key);
    ptrs.push_back(&op);
  }
  tree.run_batch(ptrs.data(), ptrs.size());
  EXPECT_EQ(tree.size_unsafe(), reference.size());
  EXPECT_TRUE(tree.check_invariants());
  for (Key k : reference) ASSERT_TRUE(tree.contains_unsafe(k));
}

TEST(BatchedTree23, InterleavedBatchesKeepBalance) {
  rt::Scheduler sched(2);
  BatchedTree23 tree(sched);
  Xoshiro256 rng(99);
  std::set<Key> reference;
  for (int round = 0; round < 30; ++round) {
    std::vector<BatchedTree23::Op> ops(64);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      op.kind = BatchedTree23::Kind::Insert;
      op.key = static_cast<Key>(rng.next_below(4096));
      reference.insert(op.key);
      ptrs.push_back(&op);
    }
    tree.run_batch(ptrs.data(), ptrs.size());
    ASSERT_TRUE(tree.check_invariants()) << "round " << round;
    ASSERT_EQ(tree.size_unsafe(), reference.size());
  }
}

}  // namespace
}  // namespace batcher::ds
