# Empty compiler generated dependencies file for test_deque.
# This may be replaced when dependencies are built.
