file(REMOVE_RECURSE
  "CMakeFiles/test_deque.dir/test_deque.cpp.o"
  "CMakeFiles/test_deque.dir/test_deque.cpp.o.d"
  "test_deque"
  "test_deque.pdb"
  "test_deque[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
