file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_primitives.dir/test_parallel_primitives.cpp.o"
  "CMakeFiles/test_parallel_primitives.dir/test_parallel_primitives.cpp.o.d"
  "test_parallel_primitives"
  "test_parallel_primitives.pdb"
  "test_parallel_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
