# Empty dependencies file for test_parallel_primitives.
# This may be replaced when dependencies are built.
