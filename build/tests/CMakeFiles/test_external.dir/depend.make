# Empty dependencies file for test_external.
# This may be replaced when dependencies are built.
