file(REMOVE_RECURSE
  "CMakeFiles/test_external.dir/test_external.cpp.o"
  "CMakeFiles/test_external.dir/test_external.cpp.o.d"
  "test_external"
  "test_external.pdb"
  "test_external[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
