# Empty dependencies file for test_batched_counter.
# This may be replaced when dependencies are built.
