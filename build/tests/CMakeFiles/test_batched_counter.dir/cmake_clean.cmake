file(REMOVE_RECURSE
  "CMakeFiles/test_batched_counter.dir/test_batched_counter.cpp.o"
  "CMakeFiles/test_batched_counter.dir/test_batched_counter.cpp.o.d"
  "test_batched_counter"
  "test_batched_counter.pdb"
  "test_batched_counter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
