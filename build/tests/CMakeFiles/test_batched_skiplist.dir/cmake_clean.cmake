file(REMOVE_RECURSE
  "CMakeFiles/test_batched_skiplist.dir/test_batched_skiplist.cpp.o"
  "CMakeFiles/test_batched_skiplist.dir/test_batched_skiplist.cpp.o.d"
  "test_batched_skiplist"
  "test_batched_skiplist.pdb"
  "test_batched_skiplist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
