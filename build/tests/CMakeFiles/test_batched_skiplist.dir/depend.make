# Empty dependencies file for test_batched_skiplist.
# This may be replaced when dependencies are built.
