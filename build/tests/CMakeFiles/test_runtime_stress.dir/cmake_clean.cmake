file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_stress.dir/test_runtime_stress.cpp.o"
  "CMakeFiles/test_runtime_stress.dir/test_runtime_stress.cpp.o.d"
  "test_runtime_stress"
  "test_runtime_stress.pdb"
  "test_runtime_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
