# Empty dependencies file for test_runtime_stress.
# This may be replaced when dependencies are built.
