file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_baselines.dir/test_concurrent_baselines.cpp.o"
  "CMakeFiles/test_concurrent_baselines.dir/test_concurrent_baselines.cpp.o.d"
  "test_concurrent_baselines"
  "test_concurrent_baselines.pdb"
  "test_concurrent_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
