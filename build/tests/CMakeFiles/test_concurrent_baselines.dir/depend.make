# Empty dependencies file for test_concurrent_baselines.
# This may be replaced when dependencies are built.
