file(REMOVE_RECURSE
  "CMakeFiles/test_batched_pq.dir/test_batched_pq.cpp.o"
  "CMakeFiles/test_batched_pq.dir/test_batched_pq.cpp.o.d"
  "test_batched_pq"
  "test_batched_pq.pdb"
  "test_batched_pq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
