# Empty dependencies file for test_batched_pq.
# This may be replaced when dependencies are built.
