file(REMOVE_RECURSE
  "CMakeFiles/test_batched_hashmap.dir/test_batched_hashmap.cpp.o"
  "CMakeFiles/test_batched_hashmap.dir/test_batched_hashmap.cpp.o.d"
  "test_batched_hashmap"
  "test_batched_hashmap.pdb"
  "test_batched_hashmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
