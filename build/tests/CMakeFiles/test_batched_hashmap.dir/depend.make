# Empty dependencies file for test_batched_hashmap.
# This may be replaced when dependencies are built.
