file(REMOVE_RECURSE
  "CMakeFiles/test_flat_combining.dir/test_flat_combining.cpp.o"
  "CMakeFiles/test_flat_combining.dir/test_flat_combining.cpp.o.d"
  "test_flat_combining"
  "test_flat_combining.pdb"
  "test_flat_combining[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
