# Empty compiler generated dependencies file for test_flat_combining.
# This may be replaced when dependencies are built.
