file(REMOVE_RECURSE
  "CMakeFiles/test_sim_ws.dir/test_sim_ws.cpp.o"
  "CMakeFiles/test_sim_ws.dir/test_sim_ws.cpp.o.d"
  "test_sim_ws"
  "test_sim_ws.pdb"
  "test_sim_ws[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
