# Empty dependencies file for test_sim_ws.
# This may be replaced when dependencies are built.
