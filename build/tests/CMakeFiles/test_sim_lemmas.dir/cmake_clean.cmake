file(REMOVE_RECURSE
  "CMakeFiles/test_sim_lemmas.dir/test_sim_lemmas.cpp.o"
  "CMakeFiles/test_sim_lemmas.dir/test_sim_lemmas.cpp.o.d"
  "test_sim_lemmas"
  "test_sim_lemmas.pdb"
  "test_sim_lemmas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
