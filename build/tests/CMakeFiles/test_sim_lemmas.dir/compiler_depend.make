# Empty compiler generated dependencies file for test_sim_lemmas.
# This may be replaced when dependencies are built.
