# Empty dependencies file for test_batched_wbtree.
# This may be replaced when dependencies are built.
