file(REMOVE_RECURSE
  "CMakeFiles/test_batched_wbtree.dir/test_batched_wbtree.cpp.o"
  "CMakeFiles/test_batched_wbtree.dir/test_batched_wbtree.cpp.o.d"
  "test_batched_wbtree"
  "test_batched_wbtree.pdb"
  "test_batched_wbtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_wbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
