file(REMOVE_RECURSE
  "CMakeFiles/test_batched_queue.dir/test_batched_queue.cpp.o"
  "CMakeFiles/test_batched_queue.dir/test_batched_queue.cpp.o.d"
  "test_batched_queue"
  "test_batched_queue.pdb"
  "test_batched_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
