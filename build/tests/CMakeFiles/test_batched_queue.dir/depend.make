# Empty dependencies file for test_batched_queue.
# This may be replaced when dependencies are built.
