# Empty compiler generated dependencies file for test_sim_baselines.
# This may be replaced when dependencies are built.
