file(REMOVE_RECURSE
  "CMakeFiles/test_sim_baselines.dir/test_sim_baselines.cpp.o"
  "CMakeFiles/test_sim_baselines.dir/test_sim_baselines.cpp.o.d"
  "test_sim_baselines"
  "test_sim_baselines.pdb"
  "test_sim_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
