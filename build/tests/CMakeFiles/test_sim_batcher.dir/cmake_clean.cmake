file(REMOVE_RECURSE
  "CMakeFiles/test_sim_batcher.dir/test_sim_batcher.cpp.o"
  "CMakeFiles/test_sim_batcher.dir/test_sim_batcher.cpp.o.d"
  "test_sim_batcher"
  "test_sim_batcher.pdb"
  "test_sim_batcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_batcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
