# Empty dependencies file for test_sim_batcher.
# This may be replaced when dependencies are built.
