# Empty dependencies file for test_batcher.
# This may be replaced when dependencies are built.
