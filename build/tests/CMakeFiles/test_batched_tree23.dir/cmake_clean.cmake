file(REMOVE_RECURSE
  "CMakeFiles/test_batched_tree23.dir/test_batched_tree23.cpp.o"
  "CMakeFiles/test_batched_tree23.dir/test_batched_tree23.cpp.o.d"
  "test_batched_tree23"
  "test_batched_tree23.pdb"
  "test_batched_tree23[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_tree23.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
