# Empty dependencies file for test_batched_tree23.
# This may be replaced when dependencies are built.
