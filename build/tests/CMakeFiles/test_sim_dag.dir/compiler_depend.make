# Empty compiler generated dependencies file for test_sim_dag.
# This may be replaced when dependencies are built.
