file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dag.dir/test_sim_dag.cpp.o"
  "CMakeFiles/test_sim_dag.dir/test_sim_dag.cpp.o.d"
  "test_sim_dag"
  "test_sim_dag.pdb"
  "test_sim_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
