file(REMOVE_RECURSE
  "CMakeFiles/test_batched_stack.dir/test_batched_stack.cpp.o"
  "CMakeFiles/test_batched_stack.dir/test_batched_stack.cpp.o.d"
  "test_batched_stack"
  "test_batched_stack.pdb"
  "test_batched_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
