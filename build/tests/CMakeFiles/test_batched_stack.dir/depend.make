# Empty dependencies file for test_batched_stack.
# This may be replaced when dependencies are built.
