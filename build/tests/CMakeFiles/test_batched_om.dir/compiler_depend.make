# Empty compiler generated dependencies file for test_batched_om.
# This may be replaced when dependencies are built.
