file(REMOVE_RECURSE
  "CMakeFiles/test_batched_om.dir/test_batched_om.cpp.o"
  "CMakeFiles/test_batched_om.dir/test_batched_om.cpp.o.d"
  "test_batched_om"
  "test_batched_om.pdb"
  "test_batched_om[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_om.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
