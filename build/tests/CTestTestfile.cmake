# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_deque[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_stress[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_batcher[1]_include.cmake")
include("/root/repo/build/tests/test_external[1]_include.cmake")
include("/root/repo/build/tests/test_batched_counter[1]_include.cmake")
include("/root/repo/build/tests/test_batched_stack[1]_include.cmake")
include("/root/repo/build/tests/test_batched_queue[1]_include.cmake")
include("/root/repo/build/tests/test_batched_skiplist[1]_include.cmake")
include("/root/repo/build/tests/test_batched_tree23[1]_include.cmake")
include("/root/repo/build/tests/test_batched_wbtree[1]_include.cmake")
include("/root/repo/build/tests/test_batched_om[1]_include.cmake")
include("/root/repo/build/tests/test_batched_pq[1]_include.cmake")
include("/root/repo/build/tests/test_batched_hashmap[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_flat_combining[1]_include.cmake")
include("/root/repo/build/tests/test_sim_dag[1]_include.cmake")
include("/root/repo/build/tests/test_sim_ws[1]_include.cmake")
include("/root/repo/build/tests/test_sim_batcher[1]_include.cmake")
include("/root/repo/build/tests/test_sim_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_sim_lemmas[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
