file(REMOVE_RECURSE
  "CMakeFiles/batcher_ds.dir/ds/batched_hashmap.cpp.o"
  "CMakeFiles/batcher_ds.dir/ds/batched_hashmap.cpp.o.d"
  "CMakeFiles/batcher_ds.dir/ds/batched_om.cpp.o"
  "CMakeFiles/batcher_ds.dir/ds/batched_om.cpp.o.d"
  "CMakeFiles/batcher_ds.dir/ds/batched_pq.cpp.o"
  "CMakeFiles/batcher_ds.dir/ds/batched_pq.cpp.o.d"
  "CMakeFiles/batcher_ds.dir/ds/batched_skiplist.cpp.o"
  "CMakeFiles/batcher_ds.dir/ds/batched_skiplist.cpp.o.d"
  "CMakeFiles/batcher_ds.dir/ds/batched_tree23.cpp.o"
  "CMakeFiles/batcher_ds.dir/ds/batched_tree23.cpp.o.d"
  "CMakeFiles/batcher_ds.dir/ds/batched_wbtree.cpp.o"
  "CMakeFiles/batcher_ds.dir/ds/batched_wbtree.cpp.o.d"
  "libbatcher_ds.a"
  "libbatcher_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
