# Empty dependencies file for batcher_ds.
# This may be replaced when dependencies are built.
