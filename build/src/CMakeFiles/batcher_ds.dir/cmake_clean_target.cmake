file(REMOVE_RECURSE
  "libbatcher_ds.a"
)
