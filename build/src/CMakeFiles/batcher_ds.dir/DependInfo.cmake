
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/batched_hashmap.cpp" "src/CMakeFiles/batcher_ds.dir/ds/batched_hashmap.cpp.o" "gcc" "src/CMakeFiles/batcher_ds.dir/ds/batched_hashmap.cpp.o.d"
  "/root/repo/src/ds/batched_om.cpp" "src/CMakeFiles/batcher_ds.dir/ds/batched_om.cpp.o" "gcc" "src/CMakeFiles/batcher_ds.dir/ds/batched_om.cpp.o.d"
  "/root/repo/src/ds/batched_pq.cpp" "src/CMakeFiles/batcher_ds.dir/ds/batched_pq.cpp.o" "gcc" "src/CMakeFiles/batcher_ds.dir/ds/batched_pq.cpp.o.d"
  "/root/repo/src/ds/batched_skiplist.cpp" "src/CMakeFiles/batcher_ds.dir/ds/batched_skiplist.cpp.o" "gcc" "src/CMakeFiles/batcher_ds.dir/ds/batched_skiplist.cpp.o.d"
  "/root/repo/src/ds/batched_tree23.cpp" "src/CMakeFiles/batcher_ds.dir/ds/batched_tree23.cpp.o" "gcc" "src/CMakeFiles/batcher_ds.dir/ds/batched_tree23.cpp.o.d"
  "/root/repo/src/ds/batched_wbtree.cpp" "src/CMakeFiles/batcher_ds.dir/ds/batched_wbtree.cpp.o" "gcc" "src/CMakeFiles/batcher_ds.dir/ds/batched_wbtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/batcher_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/batcher_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
