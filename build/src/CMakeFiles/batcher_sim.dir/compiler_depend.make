# Empty compiler generated dependencies file for batcher_sim.
# This may be replaced when dependencies are built.
