
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/batcher_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/batcher_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/dag.cpp" "src/CMakeFiles/batcher_sim.dir/sim/dag.cpp.o" "gcc" "src/CMakeFiles/batcher_sim.dir/sim/dag.cpp.o.d"
  "/root/repo/src/sim/sim_batcher.cpp" "src/CMakeFiles/batcher_sim.dir/sim/sim_batcher.cpp.o" "gcc" "src/CMakeFiles/batcher_sim.dir/sim/sim_batcher.cpp.o.d"
  "/root/repo/src/sim/sim_concurrent.cpp" "src/CMakeFiles/batcher_sim.dir/sim/sim_concurrent.cpp.o" "gcc" "src/CMakeFiles/batcher_sim.dir/sim/sim_concurrent.cpp.o.d"
  "/root/repo/src/sim/sim_flatcomb.cpp" "src/CMakeFiles/batcher_sim.dir/sim/sim_flatcomb.cpp.o" "gcc" "src/CMakeFiles/batcher_sim.dir/sim/sim_flatcomb.cpp.o.d"
  "/root/repo/src/sim/sim_ws.cpp" "src/CMakeFiles/batcher_sim.dir/sim/sim_ws.cpp.o" "gcc" "src/CMakeFiles/batcher_sim.dir/sim/sim_ws.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
