file(REMOVE_RECURSE
  "libbatcher_sim.a"
)
