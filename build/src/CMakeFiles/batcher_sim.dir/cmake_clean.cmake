file(REMOVE_RECURSE
  "CMakeFiles/batcher_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/batcher_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/batcher_sim.dir/sim/dag.cpp.o"
  "CMakeFiles/batcher_sim.dir/sim/dag.cpp.o.d"
  "CMakeFiles/batcher_sim.dir/sim/sim_batcher.cpp.o"
  "CMakeFiles/batcher_sim.dir/sim/sim_batcher.cpp.o.d"
  "CMakeFiles/batcher_sim.dir/sim/sim_concurrent.cpp.o"
  "CMakeFiles/batcher_sim.dir/sim/sim_concurrent.cpp.o.d"
  "CMakeFiles/batcher_sim.dir/sim/sim_flatcomb.cpp.o"
  "CMakeFiles/batcher_sim.dir/sim/sim_flatcomb.cpp.o.d"
  "CMakeFiles/batcher_sim.dir/sim/sim_ws.cpp.o"
  "CMakeFiles/batcher_sim.dir/sim/sim_ws.cpp.o.d"
  "libbatcher_sim.a"
  "libbatcher_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
