file(REMOVE_RECURSE
  "CMakeFiles/batcher_concurrent.dir/concurrent/lazy_skiplist.cpp.o"
  "CMakeFiles/batcher_concurrent.dir/concurrent/lazy_skiplist.cpp.o.d"
  "libbatcher_concurrent.a"
  "libbatcher_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
