# Empty dependencies file for batcher_concurrent.
# This may be replaced when dependencies are built.
