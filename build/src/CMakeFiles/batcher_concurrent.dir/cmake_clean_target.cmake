file(REMOVE_RECURSE
  "libbatcher_concurrent.a"
)
