file(REMOVE_RECURSE
  "CMakeFiles/batcher_core.dir/batcher/batcher.cpp.o"
  "CMakeFiles/batcher_core.dir/batcher/batcher.cpp.o.d"
  "libbatcher_core.a"
  "libbatcher_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
