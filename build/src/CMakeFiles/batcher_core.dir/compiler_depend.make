# Empty compiler generated dependencies file for batcher_core.
# This may be replaced when dependencies are built.
