file(REMOVE_RECURSE
  "libbatcher_core.a"
)
