# Empty compiler generated dependencies file for batcher_runtime.
# This may be replaced when dependencies are built.
