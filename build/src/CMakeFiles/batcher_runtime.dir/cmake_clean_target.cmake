file(REMOVE_RECURSE
  "libbatcher_runtime.a"
)
