file(REMOVE_RECURSE
  "CMakeFiles/batcher_runtime.dir/runtime/scheduler.cpp.o"
  "CMakeFiles/batcher_runtime.dir/runtime/scheduler.cpp.o.d"
  "CMakeFiles/batcher_runtime.dir/runtime/worker.cpp.o"
  "CMakeFiles/batcher_runtime.dir/runtime/worker.cpp.o.d"
  "libbatcher_runtime.a"
  "libbatcher_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
