file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batchsize.dir/bench_ablation_batchsize.cpp.o"
  "CMakeFiles/bench_ablation_batchsize.dir/bench_ablation_batchsize.cpp.o.d"
  "bench_ablation_batchsize"
  "bench_ablation_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
