# Empty dependencies file for bench_ablation_batchsize.
# This may be replaced when dependencies are built.
