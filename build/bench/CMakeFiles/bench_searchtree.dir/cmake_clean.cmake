file(REMOVE_RECURSE
  "CMakeFiles/bench_searchtree.dir/bench_searchtree.cpp.o"
  "CMakeFiles/bench_searchtree.dir/bench_searchtree.cpp.o.d"
  "bench_searchtree"
  "bench_searchtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_searchtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
