# Empty dependencies file for bench_searchtree.
# This may be replaced when dependencies are built.
