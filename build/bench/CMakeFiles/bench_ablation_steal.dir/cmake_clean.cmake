file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_steal.dir/bench_ablation_steal.cpp.o"
  "CMakeFiles/bench_ablation_steal.dir/bench_ablation_steal.cpp.o.d"
  "bench_ablation_steal"
  "bench_ablation_steal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_steal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
