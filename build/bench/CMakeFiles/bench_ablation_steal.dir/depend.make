# Empty dependencies file for bench_ablation_steal.
# This may be replaced when dependencies are built.
