# Empty dependencies file for bench_fig5_skiplist.
# This may be replaced when dependencies are built.
