file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_skiplist.dir/bench_fig5_skiplist.cpp.o"
  "CMakeFiles/bench_fig5_skiplist.dir/bench_fig5_skiplist.cpp.o.d"
  "bench_fig5_skiplist"
  "bench_fig5_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
