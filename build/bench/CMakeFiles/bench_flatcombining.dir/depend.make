# Empty dependencies file for bench_flatcombining.
# This may be replaced when dependencies are built.
