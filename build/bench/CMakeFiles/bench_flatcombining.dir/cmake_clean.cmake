file(REMOVE_RECURSE
  "CMakeFiles/bench_flatcombining.dir/bench_flatcombining.cpp.o"
  "CMakeFiles/bench_flatcombining.dir/bench_flatcombining.cpp.o.d"
  "bench_flatcombining"
  "bench_flatcombining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flatcombining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
