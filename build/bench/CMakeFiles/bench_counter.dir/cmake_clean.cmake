file(REMOVE_RECURSE
  "CMakeFiles/bench_counter.dir/bench_counter.cpp.o"
  "CMakeFiles/bench_counter.dir/bench_counter.cpp.o.d"
  "bench_counter"
  "bench_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
