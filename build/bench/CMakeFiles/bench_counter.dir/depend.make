# Empty dependencies file for bench_counter.
# This may be replaced when dependencies are built.
