# Empty dependencies file for bench_sim_fig5.
# This may be replaced when dependencies are built.
