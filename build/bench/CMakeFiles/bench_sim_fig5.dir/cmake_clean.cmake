file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_fig5.dir/bench_sim_fig5.cpp.o"
  "CMakeFiles/bench_sim_fig5.dir/bench_sim_fig5.cpp.o.d"
  "bench_sim_fig5"
  "bench_sim_fig5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
