file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_lemmas.dir/bench_sim_lemmas.cpp.o"
  "CMakeFiles/bench_sim_lemmas.dir/bench_sim_lemmas.cpp.o.d"
  "bench_sim_lemmas"
  "bench_sim_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
