# Empty dependencies file for bench_sim_lemmas.
# This may be replaced when dependencies are built.
