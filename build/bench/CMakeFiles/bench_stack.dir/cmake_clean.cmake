file(REMOVE_RECURSE
  "CMakeFiles/bench_stack.dir/bench_stack.cpp.o"
  "CMakeFiles/bench_stack.dir/bench_stack.cpp.o.d"
  "bench_stack"
  "bench_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
