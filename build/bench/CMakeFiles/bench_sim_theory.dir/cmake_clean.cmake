file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_theory.dir/bench_sim_theory.cpp.o"
  "CMakeFiles/bench_sim_theory.dir/bench_sim_theory.cpp.o.d"
  "bench_sim_theory"
  "bench_sim_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
