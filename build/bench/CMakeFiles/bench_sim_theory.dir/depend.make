# Empty dependencies file for bench_sim_theory.
# This may be replaced when dependencies are built.
