file(REMOVE_RECURSE
  "CMakeFiles/bench_helperlock.dir/bench_helperlock.cpp.o"
  "CMakeFiles/bench_helperlock.dir/bench_helperlock.cpp.o.d"
  "bench_helperlock"
  "bench_helperlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_helperlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
