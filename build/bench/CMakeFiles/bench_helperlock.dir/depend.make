# Empty dependencies file for bench_helperlock.
# This may be replaced when dependencies are built.
