file(REMOVE_RECURSE
  "CMakeFiles/build_index.dir/build_index.cpp.o"
  "CMakeFiles/build_index.dir/build_index.cpp.o.d"
  "build_index"
  "build_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
