# Empty compiler generated dependencies file for build_index.
# This may be replaced when dependencies are built.
