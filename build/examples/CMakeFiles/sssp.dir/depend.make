# Empty dependencies file for sssp.
# This may be replaced when dependencies are built.
