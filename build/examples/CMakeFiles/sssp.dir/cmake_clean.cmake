file(REMOVE_RECURSE
  "CMakeFiles/sssp.dir/sssp.cpp.o"
  "CMakeFiles/sssp.dir/sssp.cpp.o.d"
  "sssp"
  "sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
