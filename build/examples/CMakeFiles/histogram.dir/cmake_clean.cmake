file(REMOVE_RECURSE
  "CMakeFiles/histogram.dir/histogram.cpp.o"
  "CMakeFiles/histogram.dir/histogram.cpp.o.d"
  "histogram"
  "histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
