# Empty dependencies file for histogram.
# This may be replaced when dependencies are built.
