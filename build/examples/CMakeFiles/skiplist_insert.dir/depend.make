# Empty dependencies file for skiplist_insert.
# This may be replaced when dependencies are built.
