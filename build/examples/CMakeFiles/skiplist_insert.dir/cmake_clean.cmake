file(REMOVE_RECURSE
  "CMakeFiles/skiplist_insert.dir/skiplist_insert.cpp.o"
  "CMakeFiles/skiplist_insert.dir/skiplist_insert.cpp.o.d"
  "skiplist_insert"
  "skiplist_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skiplist_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
