# Empty dependencies file for sim_playground.
# This may be replaced when dependencies are built.
