file(REMOVE_RECURSE
  "CMakeFiles/sim_playground.dir/sim_playground.cpp.o"
  "CMakeFiles/sim_playground.dir/sim_playground.cpp.o.d"
  "sim_playground"
  "sim_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
