file(REMOVE_RECURSE
  "CMakeFiles/race_detector.dir/race_detector.cpp.o"
  "CMakeFiles/race_detector.dir/race_detector.cpp.o.d"
  "race_detector"
  "race_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
