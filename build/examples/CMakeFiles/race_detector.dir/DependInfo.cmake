
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/race_detector.cpp" "examples/CMakeFiles/race_detector.dir/race_detector.cpp.o" "gcc" "examples/CMakeFiles/race_detector.dir/race_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/batcher_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/batcher_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/batcher_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
