# Empty dependencies file for race_detector.
# This may be replaced when dependencies are built.
